package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// This file is the interprocedural half of the framework: a whole-module
// view of every loaded package, with a call graph and a flow-insensitive
// assignment graph over variables, parameters, results, and struct
// fields. The taint analyzers (sharetaint, dpbudget, ctbranch) run over
// this graph instead of a single package's AST, so a secret share that
// passes through two helper functions before hitting fmt.Sprintf is
// still caught, with the full call path reported in the diagnostic.
//
// The design balances soundness against the precision a lint gate needs
// to stay quiet on clean code:
//
//   - every variable, parameter, receiver, and result is one node,
//     identified by its types.Object (results of unnamed tuples reuse
//     the anonymous vars the type-checker allocates); struct fields get
//     one node per field *object* (field-based, not per-instance), so
//     reading w.Round off a share-holding wrapper does not inherit the
//     wrapper's taint unless something tainted was stored into Round;
//   - assignments, returns, range clauses, channel sends, and composite
//     expressions add edges between the "leaves" of the right-hand side
//     and the written object (writes through an index or star taint the
//     container object; writes through a selector taint the field node
//     and dirty the root);
//   - calls to functions declared in the analyzed set are
//     context-sensitive: each call site gets its own result nodes, and
//     taint crosses the call through a per-function summary
//     (input -> output flow bits, computed to a fixed point in
//     taint.go) instead of through shared result objects, so one
//     tainted call site cannot poison every other caller of the same
//     function. Argument->parameter "entry" edges are kept so sinks
//     inside a callee still fire when a caller passes taint in;
//   - calls to anything else (stdlib, interfaces, dynamic) flow through
//     a per-call-site passthrough node so taint survives fmt.Sprintf,
//     append, and friends;
//   - function literals are analyzed in place: their parameters and
//     results are wired up when the literal is invoked directly, and
//     captured variables flow for free because the objects are shared.
//
// Known under-approximations, documented in the analyzers' Explain
// entries: no per-instance heap model (two instances of the same struct
// type share field nodes), and whole-struct copies do not transfer
// field-node taint (the root-object edge still flows).

// Module is the whole-program view handed to RunModule analyzers.
type Module struct {
	// Fset positions every file of the load.
	Fset *token.FileSet
	// Pkgs are the packages under analysis, sorted by import path.
	Pkgs []*Package
	// Funcs indexes every function declared in Pkgs.
	Funcs map[*types.Func]*FuncInfo
	// Calls lists every static call site in deterministic order.
	Calls []*CallSite
	// Conds lists every branch condition and container-index operand,
	// the sink sites of the ctbranch analyzer.
	Conds []*CondSite
	// Returns lists the return statements of exported functions, the
	// egress sites of the dpbudget exported-return rule.
	Returns []*ReturnSite

	funcList    []*FuncInfo
	nodes       map[types.Object]*node
	fieldNds    map[*types.Var]*node
	extNodes    map[*ast.CallExpr]*node
	nodeList    []*node
	resultOwner map[*node]*types.Func // result/passthrough node -> producing func
	litResults  map[*ast.FuncLit][]*node
	litParams   map[*ast.FuncLit][]*node
	sites       map[*ast.CallExpr]*sumSite
	siteList    []*sumSite
	siteIn      map[*node][]siteInput
	resultFan   map[*node][]*node // declared result node -> per-site result nodes
}

// FuncInfo is one declared function of the module.
type FuncInfo struct {
	// Fn is the function object (the generic object for generic
	// functions; instantiations resolve back to it).
	Fn *types.Func
	// Decl is the declaration, nil only for functions without bodies.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
}

// CallSite is one static call expression.
type CallSite struct {
	// Fn is the nearest enclosing declared function (nil in package-level
	// variable initializers).
	Fn *types.Func
	// Pkg is the package containing the call.
	Pkg *Package
	// Call is the call expression.
	Call *ast.CallExpr
	// Callee is the statically resolved callee, nil for dynamic calls
	// (function values, direct literal invocations).
	Callee *types.Func
}

// CondSite is one value position that steers control flow or memory
// addressing: an if/for condition, a switch tag or case expression, or
// the index operand of a map/slice/array access.
type CondSite struct {
	Fn   *types.Func
	Pkg  *Package
	Expr ast.Expr
	// Kind is "if", "for", "switch", "case", or "index".
	Kind string
}

// ReturnSite is one result expression of an exported function.
type ReturnSite struct {
	Fn   *types.Func
	Pkg  *Package
	Expr ast.Expr
}

// sumSite is one call to a function declared in the analyzed set: the
// unit of context-sensitive summary application. Inputs are indexed
// receiver-first, then parameters (variadic arguments collapse onto the
// final parameter); results are fresh per-site nodes.
type sumSite struct {
	caller  *types.Func
	pkg     *Package
	call    *ast.CallExpr
	callee  *types.Func
	inputs  [][]*node // leaf nodes of each input expression
	results []*node   // per-call-site result nodes
}

// siteInput locates one input position of a summary site.
type siteInput struct {
	site *sumSite
	idx  int
}

// node is one vertex of the assignment graph.
type node struct {
	obj  types.Object // nil for call-result and passthrough nodes
	fn   *types.Func  // enclosing/declaring function, nil at package scope
	desc string
	pos  token.Pos
	out  []tEdge
}

// tEdge is one directed flow edge.
type tEdge struct {
	to *node
	// via is the callee when the edge crosses a call boundary
	// (argument->parameter, receiver->parameter, or flow into an
	// external passthrough node); nil for plain assignments.
	via *types.Func
	pos token.Pos
	// entry marks argument->parameter edges into analyzed callees.
	// They are traversed only in the final propagation phase (so sinks
	// inside a callee fire when a caller passes taint in) and never
	// during summary computation, where the callee's own summary
	// carries the flow instead.
	entry bool
}

// BuildModule indexes the packages and constructs the assignment graph.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Funcs:       make(map[*types.Func]*FuncInfo),
		nodes:       make(map[types.Object]*node),
		fieldNds:    make(map[*types.Var]*node),
		extNodes:    make(map[*ast.CallExpr]*node),
		resultOwner: make(map[*node]*types.Func),
		litResults:  make(map[*ast.FuncLit][]*node),
		litParams:   make(map[*ast.FuncLit][]*node),
		sites:       make(map[*ast.CallExpr]*sumSite),
		siteIn:      make(map[*node][]siteInput),
		resultFan:   make(map[*node][]*node),
		Pkgs:        pkgs,
	}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	}
	// Pass 1: index every declared function and materialize its
	// receiver, parameter, and result nodes so call edges can target
	// them before the body is walked.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Fn: obj, Decl: fd, Pkg: pkg}
				m.Funcs[obj] = fi
				m.funcList = append(m.funcList, fi)
				sig := obj.Type().(*types.Signature)
				if r := sig.Recv(); r != nil {
					m.ensureNode(r, obj, "receiver "+r.Name()+" of "+shortFuncName(obj))
				}
				for i := 0; i < sig.Params().Len(); i++ {
					p := sig.Params().At(i)
					m.ensureNode(p, obj, "param "+p.Name()+" of "+shortFuncName(obj))
				}
				for i := 0; i < sig.Results().Len(); i++ {
					r := sig.Results().At(i)
					n := m.ensureNode(r, obj, fmt.Sprintf("result %d of %s", i, shortFuncName(obj)))
					m.resultOwner[n] = obj
				}
			}
		}
	}
	// Pass 2: walk every body and package-level initializer.
	for _, fi := range m.funcList {
		if fi.Decl.Body == nil {
			continue
		}
		sig := fi.Fn.Type().(*types.Signature)
		m.walk(fi.Pkg, fi.Fn, fi.Decl.Body, m.resultsOf(sig))
		if fi.Decl.Name.IsExported() && fi.Decl.Body != nil {
			m.collectReturns(fi)
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Values) == 0 {
						continue
					}
					m.initSpec(pkg, vs)
				}
			}
		}
	}
	return m
}

// resultsOf returns the declared result nodes for a signature (the
// anonymous result vars the type-checker allocates for unnamed results
// are perfectly good node identities).
func (m *Module) resultsOf(sig *types.Signature) []*node {
	res := make([]*node, sig.Results().Len())
	for i := range res {
		res[i] = m.nodes[sig.Results().At(i)]
	}
	return res
}

// inputNodes returns a function's receiver-first input nodes.
func (m *Module) inputNodes(fn *types.Func) []*node {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var in []*node
	if r := sig.Recv(); r != nil {
		in = append(in, m.nodes[r])
	}
	for i := 0; i < sig.Params().Len(); i++ {
		in = append(in, m.nodes[sig.Params().At(i)])
	}
	return in
}

// ensureNode returns the node for obj, creating it with the given
// attribution if it does not exist yet.
func (m *Module) ensureNode(obj types.Object, fn *types.Func, desc string) *node {
	if n, ok := m.nodes[obj]; ok {
		return n
	}
	n := &node{obj: obj, fn: fn, desc: desc, pos: obj.Pos()}
	m.nodes[obj] = n
	m.nodeList = append(m.nodeList, n)
	return n
}

// fieldNode returns the module-wide node of one struct field object.
// Field nodes are shared across instances (field-based, not
// field-sensitive): precise enough to separate a struct's public
// metadata from its secret payload, coarse across instances.
func (m *Module) fieldNode(v *types.Var) *node {
	if n, ok := m.fieldNds[v]; ok {
		return n
	}
	n := &node{obj: v, desc: "field " + v.Name(), pos: v.Pos()}
	m.fieldNds[v] = n
	m.nodeList = append(m.nodeList, n)
	return n
}

// fieldVar resolves a selector to the struct field it reads, or nil
// when the selector is a method, package member, or unresolved.
func fieldVar(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// objNode resolves an identifier's object to its node, creating a plain
// variable node on demand. Non-variable objects (constants, types,
// functions, package names) yield nil.
func (m *Module) objNode(pkg *Package, fn *types.Func, id *ast.Ident) *node {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if n, ok := m.nodes[v]; ok {
		return n
	}
	return m.ensureNode(v, fn, "var "+v.Name())
}

// extNodeFor returns the passthrough node of an unanalyzed call site.
func (m *Module) extNodeFor(fn *types.Func, call *ast.CallExpr, callee *types.Func) *node {
	if n, ok := m.extNodes[call]; ok {
		return n
	}
	desc := "call"
	if callee != nil {
		desc = "result of " + shortFuncName(callee)
	}
	n := &node{fn: fn, desc: desc, pos: call.Pos()}
	m.extNodes[call] = n
	m.nodeList = append(m.nodeList, n)
	if callee != nil {
		m.resultOwner[n] = callee
	}
	return n
}

// ensureSite returns the summary site of a call to an analyzed callee,
// building its input leaf lists and per-site result nodes on first use.
func (m *Module) ensureSite(pkg *Package, fn *types.Func, call *ast.CallExpr, callee *types.Func) *sumSite {
	if s, ok := m.sites[call]; ok {
		return s
	}
	sig := callee.Type().(*types.Signature)
	s := &sumSite{caller: fn, pkg: pkg, call: call, callee: callee}
	m.sites[call] = s
	m.siteList = append(m.siteList, s)

	hasRecv := sig.Recv() != nil
	np := sig.Params().Len()
	nIn := np
	if hasRecv {
		nIn++
	}
	s.inputs = make([][]*node, nIn)
	if hasRecv {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			s.inputs[0] = m.Leaves(pkg, fn, sel.X)
		}
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= np-1 {
			pi = np - 1
		}
		if pi >= np || pi < 0 {
			break
		}
		idx := pi
		if hasRecv {
			idx++
		}
		s.inputs[idx] = append(s.inputs[idx], m.Leaves(pkg, fn, arg)...)
	}

	nr := sig.Results().Len()
	s.results = make([]*node, nr)
	shared := m.resultsOf(sig)
	for j := 0; j < nr; j++ {
		desc := "result of " + shortFuncName(callee)
		if nr > 1 {
			desc = fmt.Sprintf("result %d of %s", j, shortFuncName(callee))
		}
		n := &node{fn: fn, desc: desc, pos: call.Pos()}
		m.nodeList = append(m.nodeList, n)
		m.resultOwner[n] = callee
		s.results[j] = n
		if j < len(shared) && shared[j] != nil {
			m.resultFan[shared[j]] = append(m.resultFan[shared[j]], n)
		}
	}
	for idx, leaves := range s.inputs {
		for _, ln := range leaves {
			m.siteIn[ln] = append(m.siteIn[ln], siteInput{site: s, idx: idx})
		}
	}
	return s
}

// addEdge appends a flow edge.
func addEdge(from, to *node, via *types.Func, pos token.Pos) {
	if from == nil || to == nil || from == to {
		return
	}
	from.out = append(from.out, tEdge{to: to, via: via, pos: pos})
}

// addEntryEdge appends an argument->parameter edge into an analyzed
// callee; see tEdge.entry.
func addEntryEdge(from, to *node, via *types.Func, pos token.Pos) {
	if from == nil || to == nil || from == to {
		return
	}
	from.out = append(from.out, tEdge{to: to, via: via, pos: pos, entry: true})
}

// walk builds graph edges for every statement in body. fn is the
// nearest declared function (used for attribution and, for dpbudget,
// accountant coverage); rets are the result nodes return statements
// feed. Function literals recurse with their own result nodes but keep
// the outer fn attribution.
func (m *Module) walk(pkg *Package, fn *types.Func, body ast.Node, rets []*node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x == body {
				return true
			}
			m.enterLit(pkg, fn, x)
			return false
		case *ast.AssignStmt:
			m.assign(pkg, fn, x.Lhs, x.Rhs)
		case *ast.DeclStmt:
			if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
						m.specAssign(pkg, fn, vs)
					}
				}
			}
		case *ast.ReturnStmt:
			m.ret(pkg, fn, x, rets)
		case *ast.RangeStmt:
			m.rangeEdges(pkg, fn, x)
		case *ast.SendStmt:
			for _, dst := range m.writeNodes(pkg, fn, x.Chan) {
				for _, src := range m.Leaves(pkg, fn, x.Value) {
					addEdge(src, dst, nil, x.Arrow)
				}
			}
		case *ast.CallExpr:
			m.callEdges(pkg, fn, x)
		case *ast.IfStmt:
			m.Conds = append(m.Conds, &CondSite{Fn: fn, Pkg: pkg, Expr: x.Cond, Kind: "if"})
		case *ast.ForStmt:
			if x.Cond != nil {
				m.Conds = append(m.Conds, &CondSite{Fn: fn, Pkg: pkg, Expr: x.Cond, Kind: "for"})
			}
		case *ast.SwitchStmt:
			if x.Tag != nil {
				m.Conds = append(m.Conds, &CondSite{Fn: fn, Pkg: pkg, Expr: x.Tag, Kind: "switch"})
			}
		case *ast.CaseClause:
			for _, e := range x.List {
				m.Conds = append(m.Conds, &CondSite{Fn: fn, Pkg: pkg, Expr: e, Kind: "case"})
			}
		case *ast.IndexExpr:
			if tv, ok := pkg.Info.Types[x.X]; ok && tv.Type != nil && isContainer(tv.Type) {
				m.Conds = append(m.Conds, &CondSite{Fn: fn, Pkg: pkg, Expr: x.Index, Kind: "index"})
			}
		}
		return true
	})
}

// isContainer reports whether t indexes into data (as opposed to a
// generic instantiation, whose IndexExpr has a function or type X).
func isContainer(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Map, *types.Slice, *types.Array, *types.Pointer:
		return true
	case *types.Basic:
		return true // strings
	}
	return false
}

// enterLit wires up a function literal: parameter and result nodes are
// materialized so direct invocations can connect, and the body is
// walked with the literal's own result nodes.
func (m *Module) enterLit(pkg *Package, fn *types.Func, lit *ast.FuncLit) {
	sig, ok := pkg.Info.Types[lit].Type.(*types.Signature)
	if !ok {
		return
	}
	params := make([]*node, sig.Params().Len())
	for i := range params {
		p := sig.Params().At(i)
		params[i] = m.ensureNode(p, fn, "param "+p.Name()+" of func literal")
	}
	results := make([]*node, sig.Results().Len())
	for i := range results {
		r := sig.Results().At(i)
		results[i] = m.ensureNode(r, fn, fmt.Sprintf("result %d of func literal", i))
	}
	m.litParams[lit] = params
	m.litResults[lit] = results
	if lit.Body != nil {
		m.walk(pkg, fn, lit.Body, results)
	}
}

// initSpec handles package-level `var x = expr` initializers.
func (m *Module) initSpec(pkg *Package, vs *ast.ValueSpec) {
	for _, v := range vs.Values {
		ast.Inspect(v, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				m.enterLit(pkg, nil, x)
				return false
			case *ast.CallExpr:
				m.callEdges(pkg, nil, x)
			}
			return true
		})
	}
	m.specAssign(pkg, nil, vs)
}

// specAssign connects a ValueSpec's initializers to its names.
func (m *Module) specAssign(pkg *Package, fn *types.Func, vs *ast.ValueSpec) {
	lhs := make([]ast.Expr, len(vs.Names))
	for i, n := range vs.Names {
		lhs[i] = n
	}
	m.assign(pkg, fn, lhs, vs.Values)
}

// assign connects right-hand sides to left-hand targets, handling
// multi-value calls and comma-ok forms.
func (m *Module) assign(pkg *Package, fn *types.Func, lhs, rhs []ast.Expr) {
	if len(rhs) == 1 && len(lhs) > 1 {
		r := ast.Unparen(rhs[0])
		if call, ok := r.(*ast.CallExpr); ok {
			srcs := m.callResultNodes(pkg, fn, call)
			for i, l := range lhs {
				for _, dst := range m.writeNodes(pkg, fn, l) {
					if len(srcs) == len(lhs) {
						addEdge(srcs[i], dst, nil, l.Pos())
					} else {
						for _, s := range srcs {
							addEdge(s, dst, nil, l.Pos())
						}
					}
				}
			}
			return
		}
		// v, ok := m[k] / x.(T) / <-ch: the value flows, the bool does not.
		for _, dst := range m.writeNodes(pkg, fn, lhs[0]) {
			for _, s := range m.Leaves(pkg, fn, rhs[0]) {
				addEdge(s, dst, nil, lhs[0].Pos())
			}
		}
		return
	}
	for i, r := range rhs {
		if i >= len(lhs) {
			break
		}
		for _, dst := range m.writeNodes(pkg, fn, lhs[i]) {
			for _, s := range m.Leaves(pkg, fn, r) {
				addEdge(s, dst, nil, lhs[i].Pos())
			}
		}
	}
}

// writeNodes resolves the nodes written by an assignment target: plain
// identifiers write their object, selector writes taint the field node
// and dirty every enclosing field and the root container, index/star/
// slice writes taint the container.
func (m *Module) writeNodes(pkg *Package, fn *types.Func, e ast.Expr) []*node {
	var out []*node
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return out
			}
			if n := m.objNode(pkg, fn, x); n != nil {
				out = append(out, n)
			}
			return out
		case *ast.SelectorExpr:
			// pkg-qualified var?
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := pkg.Info.Uses[id].(*types.PkgName); isPkg {
					if n := m.objNode(pkg, fn, x.Sel); n != nil {
						out = append(out, n)
					}
					return out
				}
			}
			if fv := fieldVar(pkg, x); fv != nil {
				out = append(out, m.fieldNode(fv))
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return out
		}
	}
}

// ret connects return expressions to the current result nodes.
func (m *Module) ret(pkg *Package, fn *types.Func, r *ast.ReturnStmt, rets []*node) {
	if len(r.Results) == 0 {
		return // naked return: named results were written by assignments
	}
	if len(r.Results) == 1 && len(rets) > 1 {
		if call, ok := ast.Unparen(r.Results[0]).(*ast.CallExpr); ok {
			srcs := m.callResultNodes(pkg, fn, call)
			for i, dst := range rets {
				if len(srcs) == len(rets) {
					addEdge(srcs[i], dst, nil, r.Pos())
				} else {
					for _, s := range srcs {
						addEdge(s, dst, nil, r.Pos())
					}
				}
			}
			return
		}
	}
	for i, e := range r.Results {
		if i >= len(rets) {
			break
		}
		for _, s := range m.Leaves(pkg, fn, e) {
			addEdge(s, rets[i], nil, e.Pos())
		}
	}
}

// rangeEdges connects a range clause: values always flow from the
// ranged container; keys flow only for maps (slice/array keys are
// public indices).
func (m *Module) rangeEdges(pkg *Package, fn *types.Func, r *ast.RangeStmt) {
	srcs := m.Leaves(pkg, fn, r.X)
	tv, ok := pkg.Info.Types[r.X]
	isMap := false
	if ok && tv.Type != nil {
		_, isMap = types.Unalias(tv.Type).Underlying().(*types.Map)
	}
	if r.Key != nil && isMap {
		for _, dst := range m.writeNodes(pkg, fn, r.Key) {
			for _, s := range srcs {
				addEdge(s, dst, nil, r.Key.Pos())
			}
		}
	}
	if r.Value != nil {
		for _, dst := range m.writeNodes(pkg, fn, r.Value) {
			for _, s := range srcs {
				addEdge(s, dst, nil, r.Value.Pos())
			}
		}
	}
}

// calleeOf statically resolves a call's target function, unwrapping
// generic instantiations. Returns nil for dynamic calls, conversions,
// and builtins.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of a builtin callee, or "".
func builtinName(pkg *Package, call *ast.CallExpr) string {
	fun := ast.Unparen(call.Fun)
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// callEdges records the call site and adds argument/receiver edges.
func (m *Module) callEdges(pkg *Package, fn *types.Func, call *ast.CallExpr) {
	if isConversion(pkg, call) || builtinName(pkg, call) != "" {
		return // conversions and builtins are handled by Leaves
	}
	callee := calleeOf(pkg, call)
	m.Calls = append(m.Calls, &CallSite{Fn: fn, Pkg: pkg, Call: call, Callee: callee})

	// Direct invocation of a function literal.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		params := m.litParams[lit]
		for i, arg := range call.Args {
			if i >= len(params) {
				break
			}
			for _, s := range m.Leaves(pkg, fn, arg) {
				addEdge(s, params[i], nil, arg.Pos())
			}
		}
		return
	}

	if _, ok := m.Funcs[callee]; ok && callee != nil {
		// Analyzed callee: entry edges carry taint to the callee's own
		// sink sites; flows back out happen through the summary at this
		// site's result nodes (see taint.go).
		site := m.ensureSite(pkg, fn, call, callee)
		ins := m.inputNodes(callee)
		for idx, leaves := range site.inputs {
			if idx >= len(ins) || ins[idx] == nil {
				continue
			}
			for _, s := range leaves {
				addEntryEdge(s, ins[idx], callee, call.Pos())
			}
		}
		return
	}

	// External, interface, or dynamic call: args and receiver flow into
	// the per-site passthrough node so taint survives the black box.
	ext := m.extNodeFor(fn, call, callee)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); !ok || pkg.Info.Uses[id] == nil || !isPkgName(pkg, id) {
			for _, s := range m.Leaves(pkg, fn, sel.X) {
				addEdge(s, ext, callee, call.Pos())
			}
		}
	}
	for _, arg := range call.Args {
		for _, s := range m.Leaves(pkg, fn, arg) {
			addEdge(s, ext, callee, arg.Pos())
		}
	}
}

func isPkgName(pkg *Package, id *ast.Ident) bool {
	_, ok := pkg.Info.Uses[id].(*types.PkgName)
	return ok
}

// callResultNodes returns the nodes representing a call's results: the
// per-site result nodes for analyzed callees, the literal's result
// nodes for direct literal invocations, the passthrough node otherwise.
func (m *Module) callResultNodes(pkg *Package, fn *types.Func, call *ast.CallExpr) []*node {
	if isConversion(pkg, call) {
		if len(call.Args) == 1 {
			return m.Leaves(pkg, fn, call.Args[0])
		}
		return nil
	}
	if b := builtinName(pkg, call); b != "" {
		switch b {
		case "append", "copy", "min", "max", "real", "imag", "complex":
			var out []*node
			for _, a := range call.Args {
				out = append(out, m.Leaves(pkg, fn, a)...)
			}
			return out
		default: // len, cap, make, new, clear, delete, panic, ...
			return nil
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return m.litResults[lit]
	}
	callee := calleeOf(pkg, call)
	if _, ok := m.Funcs[callee]; ok && callee != nil {
		return m.ensureSite(pkg, fn, call, callee).results
	}
	return []*node{m.extNodeFor(fn, call, callee)}
}

// Leaves returns the graph nodes a read of expr draws from: identifiers
// map to their objects, field selections map to the module-wide field
// node, index/slice reads map to the container object, calls map to
// their result nodes. Nil-comparison operands are excluded (presence
// checks are not value reads). Struct composite literals additionally
// wire their element values into the matching field nodes.
func (m *Module) Leaves(pkg *Package, fn *types.Func, e ast.Expr) []*node {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if n := m.objNode(pkg, fn, x); n != nil {
			return []*node{n}
		}
	case *ast.SelectorExpr:
		if id, ok := x.X.(*ast.Ident); ok && isPkgName(pkg, id) {
			if n := m.objNode(pkg, fn, x.Sel); n != nil {
				return []*node{n}
			}
			return nil
		}
		// A field read draws from the field node only: the root object's
		// taint does not smear onto its public fields.
		if fv := fieldVar(pkg, x); fv != nil {
			return []*node{m.fieldNode(fv)}
		}
		return m.Leaves(pkg, fn, x.X) // method value etc.
	case *ast.IndexExpr:
		return m.Leaves(pkg, fn, x.X)
	case *ast.IndexListExpr:
		return m.Leaves(pkg, fn, x.X)
	case *ast.SliceExpr:
		return m.Leaves(pkg, fn, x.X)
	case *ast.StarExpr:
		return m.Leaves(pkg, fn, x.X)
	case *ast.UnaryExpr:
		return m.Leaves(pkg, fn, x.X)
	case *ast.BinaryExpr:
		if isNilComparison(x) {
			return nil
		}
		return append(m.Leaves(pkg, fn, x.X), m.Leaves(pkg, fn, x.Y)...)
	case *ast.CallExpr:
		return m.callResultNodes(pkg, fn, x)
	case *ast.CompositeLit:
		var st *types.Struct
		if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil {
			st, _ = types.Unalias(tv.Type).Underlying().(*types.Struct)
			if p, ok := types.Unalias(tv.Type).Underlying().(*types.Pointer); ok {
				st, _ = types.Unalias(p.Elem()).Underlying().(*types.Struct)
			}
		}
		var out []*node
		for i, el := range x.Elts {
			var fv *types.Var
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					if v, ok := pkg.Info.Uses[id].(*types.Var); ok && v.IsField() {
						fv = v
					}
				}
				el = kv.Value
			} else if st != nil && i < st.NumFields() {
				fv = st.Field(i)
			}
			ls := m.Leaves(pkg, fn, el)
			if fv != nil {
				for _, s := range ls {
					addEdge(s, m.fieldNode(fv), nil, el.Pos())
				}
			}
			out = append(out, ls...)
		}
		return out
	case *ast.TypeAssertExpr:
		return m.Leaves(pkg, fn, x.X)
	}
	return nil
}

// isNilComparison reports whether b is == or != against nil.
func isNilComparison(b *ast.BinaryExpr) bool {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(b.X) || isNil(b.Y)
}

// collectReturns records the result expressions of an exported function
// for the dpbudget exported-return rule.
func (m *Module) collectReturns(fi *FuncInfo) {
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != fi.Decl.Body {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			for _, e := range r.Results {
				m.Returns = append(m.Returns, &ReturnSite{Fn: fi.Fn, Pkg: fi.Pkg, Expr: e})
			}
		}
		return true
	})
}

// FuncKey renders a function's stable registry key: "pkgpath.Name" for
// package functions, "(pkgpath.Type).Name" for methods (pointer
// receivers are flattened, so one key matches both spellings).
// Interface methods key on the interface type, so calls through
// e.g. transport.PartyConn match without knowing the concrete conn.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Path() + "." + fn.Name()
		}
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok && named.Obj().Pkg() != nil {
		return "(" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// shortFuncName is FuncKey without the package path prefix, for witness
// rendering.
func shortFuncName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	key := FuncKey(fn)
	// Trim "sqm/internal/" style prefixes inside the parens and before
	// plain names to keep witnesses readable.
	return trimPkgPaths(key)
}

// trimPkgPaths shortens import paths in a key to their last element.
func trimPkgPaths(key string) string {
	out := make([]byte, 0, len(key))
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			start = i + 1
			continue
		}
		if key[i] == '(' || key[i] == ')' || key[i] == '.' {
			out = append(out, key[start:i+1]...)
			start = i + 1
		}
	}
	out = append(out, key[start:]...)
	return string(out)
}

// PosString renders a position as "file.go:line" with the bare file
// name, for compact witness paths.
func (m *Module) PosString(pos token.Pos) string {
	p := m.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
