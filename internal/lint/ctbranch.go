package lint

import (
	"go/ast"
	"go/types"
)

// ctExemptPkgs are the sanctioned open points: reconstruction,
// aggregation, and share bookkeeping legitimately compare and index
// share material while opening it. Everywhere else, control flow must
// be independent of secret-derived values — a branch is a timing/trace
// side channel no share ever pays for in the privacy proof.
var ctExemptPkgs = map[string]bool{
	"sqm/internal/bgw":    true,
	"sqm/internal/shamir": true,
	"sqm/internal/secagg": true,
	"sqm/internal/beaver": true,
}

// AnalyzerCTBranch enforces the constant-time control-flow invariant:
// no if/for/switch condition, case expression, or map/slice index may
// depend on a secret share or a value derived from one (through any
// call depth), outside the sanctioned open points. Branching on secret
// data leaks it through timing, trace events, and message patterns that
// the distributed-DP analysis does not model.
var AnalyzerCTBranch = &Analyzer{
	Name:      "ctbranch",
	Doc:       "control flow (if/for/switch/case) or container indexing conditioned on secret-share-derived values outside sanctioned open points",
	Severity:  SeverityError,
	RunModule: runCTBranch,
	Explain: &Explanation{
		Invariant: "Control flow must be data-oblivious with respect to shares: conditions, switch tags, case expressions, and map/slice index operands may not depend on share-typed values or values derived from them, except inside the open/reconstruct packages (bgw, shamir, secagg) where revealing is the point. Secret-dependent branches leak through timing and trace side channels.",
		Sources: []string{
			"share-typed values (the sharetaint type table) used as values, not presence checks",
			"values derived from share material, e.g. (bgw.Shared).AdditiveShares elements, through any call depth",
		},
		Sinks: []string{
			"if / for / switch conditions, switch tags, case expressions",
			"map, slice, array, and string index operands",
		},
		Sanitizers: []string{
			"sanctioned opens (same registry as sharetaint): opened values are public outputs and may steer control flow",
			"nil-comparisons (presence checks) and len/cap (public shape) never count as value reads",
		},
		Example: `vote.go:21:5: ctbranch: control flow conditioned on secret-derived value [source (bgw.Shared).AdditiveShares (vote.go:12) → param shs of leakBit (vote.go:17) → result 0 of leakBit (vote.go:18) → condition (vote.go:21)]`,
	},
}

func runCTBranch(mp *ModulePass) {
	m := mp.Module
	res := m.Propagate(TaintSpec{
		TypeSources: shareTypes,
		FuncSources: shareFuncSources,
		Sanitizers:  shareSanitizers,
	})
	for _, c := range m.Conds {
		if ctExemptPkgs[c.Pkg.Path] {
			continue
		}
		expr, why := secretCondUse(m, res, c.Pkg, c.Fn, c.Expr)
		if expr == nil {
			continue
		}
		what := "control flow"
		if c.Kind == "index" {
			what = "container indexing"
		}
		mp.Reportf(expr.Pos(), "%s conditioned on secret-derived value outside sanctioned open points; make the %s data-oblivious or open the value first [%s → %s (%s)]",
			what, c.Kind, why, condKindDesc(c.Kind), m.PosString(expr.Pos()))
	}
}

func condKindDesc(kind string) string {
	if kind == "index" {
		return "index operand"
	}
	return "condition"
}

// secretCondUse walks a condition/index expression looking for a
// secret value read: an identifier or call result whose node is
// tainted, or any sub-expression whose own static type contains a
// share type. Nil-comparisons are presence checks and stay silent;
// selector reads judge their own field type (a public field of a
// struct that also holds shares is fine to branch on).
func secretCondUse(m *Module, res *TaintResult, pkg *Package, fn *types.Func, e ast.Expr) (ast.Expr, string) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if n := m.objNode(pkg, fn, x); n != nil && res.Tainted(n) {
			return x, res.Witness(n)
		}
	case *ast.BinaryExpr:
		if isNilComparison(x) {
			return nil, ""
		}
		if sub, w := secretCondUse(m, res, pkg, fn, x.X); sub != nil {
			return sub, w
		}
		return secretCondUse(m, res, pkg, fn, x.Y)
	case *ast.UnaryExpr:
		return secretCondUse(m, res, pkg, fn, x.X)
	case *ast.SelectorExpr:
		// Field reads draw from the module-wide field node, so only the
		// selected field's own taint decides: w.Round on a share-holding
		// wrapper is public, w.Share is not.
		for _, n := range m.Leaves(pkg, fn, x) {
			if res.Tainted(n) {
				return x, res.Witness(n)
			}
		}
		if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil {
			if name, secret := containsSecretType(tv.Type); secret {
				return x, name + " field read"
			}
		}
	case *ast.IndexExpr:
		// Reading an element out of tainted share material and branching
		// on it is the leak; judge the container.
		for _, n := range m.Leaves(pkg, fn, x.X) {
			if res.Tainted(n) {
				return x, res.Witness(n)
			}
		}
		return secretCondUse(m, res, pkg, fn, x.Index)
	case *ast.CallExpr:
		if b := builtinName(pkg, x); b == "len" || b == "cap" {
			return nil, "" // shape is public
		}
		for _, n := range m.callResultNodes(pkg, fn, x) {
			if res.Tainted(n) {
				return x, res.Witness(n)
			}
		}
		if tv, ok := pkg.Info.Types[x]; ok && tv.Type != nil {
			if name, secret := containsSecretType(tv.Type); secret {
				return x, name + " call result"
			}
		}
	case *ast.TypeAssertExpr:
		return secretCondUse(m, res, pkg, fn, x.X)
	}
	// Direct value use of a share-typed expression (non-selector forms).
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.CompositeLit, *ast.StarExpr:
		if tv, ok := pkg.Info.Types[ast.Unparen(e)]; ok && tv.Type != nil {
			if name, secret := containsSecretType(tv.Type); secret {
				return e, name + " value"
			}
		}
	}
	return nil, ""
}
