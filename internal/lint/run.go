package lint

// Result is the outcome of running an analyzer suite over a package
// set.
type Result struct {
	// Diagnostics are the findings that survived //lint:ignore
	// suppression, sorted by position.
	Diagnostics []Diagnostic
	// Suppressed are the findings removed by a matching directive,
	// sorted by position. Kept for auditability: sqmlint -show-ignored
	// prints them.
	Suppressed []Diagnostic
}

// Run applies every analyzer to every package, filters the findings
// through //lint:ignore directives, and returns both kept and
// suppressed diagnostics in deterministic order. Malformed directives
// surface as "lint" diagnostics so a typo cannot silently disable a
// suppression.
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				PkgPath:  pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				analyzer: a,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			a.Run(pass)
		}
	}
	// Interprocedural analyzers run once over the whole loaded set, on
	// a shared module graph built on demand.
	var mod *Module
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if mod == nil {
			mod = BuildModule(pkgs)
		}
		mp := &ModulePass{
			Module:   mod,
			analyzer: a,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		a.RunModule(mp)
	}
	directives, malformed := parseIgnoreDirectives(pkgs)
	kept, suppressed := applyIgnores(raw, directives)
	kept = append(kept, malformed...)
	sortDiagnostics(kept)
	sortDiagnostics(suppressed)
	return Result{
		Diagnostics: dedupDiagnostics(kept),
		Suppressed:  dedupDiagnostics(suppressed),
	}
}
