package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Fset positions the package's files.
	Fset *token.FileSet
	// Path is the package's import path (module-rooted, e.g.
	// "sqm/internal/field").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the type-checker facts the analyzers consume.
	Info *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved from source
// in-process, and standard-library imports go through the stdlib's
// source importer (type-checking from $GOROOT/src), so no compiled
// export data or external tooling is required.
//
// Test files (*_test.go) are deliberately excluded from loading: the
// analyzer suite encodes invariants of shipped code, and tests are
// free to use math/rand, exact float comparison against golden values,
// and panics.
type Loader struct {
	// Fset positions all files of this load.
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import cycle detection
}

// NewLoader builds a Loader for the module rooted at or above dir
// (located by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns ("./...", "./sub/...", "./sub",
// relative to base) and returns the matched packages, type-checked,
// sorted by import path. base must lie inside the module.
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := filepath.Join(base, pat)
		if !strings.HasPrefix(dir+string(filepath.Separator), l.modRoot+string(filepath.Separator)) {
			return nil, fmt.Errorf("lint: pattern %q escapes module root %s", pat, l.modRoot)
		}
		if rec {
			if err := walkPackageDirs(dir, dirs); err != nil {
				return nil, err
			}
		} else {
			ok, err := hasGoFiles(dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			dirs[dir] = true
		}
	}
	var paths []string
	for dir := range dirs {
		paths = append(paths, l.dirImportPath(dir))
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.importPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir type-checks the single directory dir (which may live under
// testdata, outside the module's package tree) as if its import path
// were asPath. Module-internal imports in the directory's files
// resolve against the enclosing module, so fixture files can import
// real sqm packages.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.checkDir(abs, asPath)
}

// dirImportPath maps an absolute directory under the module root to
// its import path.
func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// walkPackageDirs collects every directory at or below root that holds
// at least one non-test Go file, skipping testdata, vendor, hidden
// directories, and node_modules.
func walkPackageDirs(root string, out map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || name == "node_modules" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			out[path] = true
		}
		return nil
	})
}

// hasGoFiles reports whether dir directly contains a non-test Go file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, "_") && !strings.HasPrefix(n, ".") {
			return true, nil
		}
	}
	return false, nil
}

// Import implements types.Importer so the type-checker can resolve the
// imports of whatever package is being checked: module-internal paths
// are loaded from source, everything else is delegated to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.importPath(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// importPath loads a module-internal package by import path.
func (l *Loader) importPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	l.loading[path] = true
	p, err := l.checkDir(dir, path)
	delete(l.loading, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// checkDir parses and type-checks the non-test Go files of dir under
// the import path asPath.
func (l *Loader) checkDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") && !strings.HasPrefix(n, "_") && !strings.HasPrefix(n, ".") {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := &types.Config{Importer: l}
	pkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", asPath, err)
	}
	return &Package{Fset: l.Fset, Path: asPath, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}
