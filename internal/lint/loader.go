package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Fset positions the package's files.
	Fset *token.FileSet
	// Path is the package's import path (module-rooted, e.g.
	// "sqm/internal/field").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info carries the type-checker facts the analyzers consume.
	Info *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports are resolved from source
// in-process, and standard-library imports go through the stdlib's
// source importer (type-checking from $GOROOT/src), so no compiled
// export data or external tooling is required.
//
// Test files (*_test.go) are deliberately excluded from loading: the
// analyzer suite encodes invariants of shipped code, and tests are
// free to use math/rand, exact float comparison against golden values,
// and panics.
type Loader struct {
	// Fset positions all files of this load.
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.Importer
	pkgs    map[string]*Package // memoized by import path
	loading map[string]bool     // import cycle detection
}

// NewLoader builds a Loader for the module rooted at or above dir
// (located by walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		d = parent
	}
}

// Load resolves the given patterns ("./...", "./sub/...", "./sub",
// relative to base) and returns the matched packages, type-checked,
// sorted by import path. base must lie inside the module.
func (l *Loader) Load(base string, patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := filepath.Join(base, pat)
		if !strings.HasPrefix(dir+string(filepath.Separator), l.modRoot+string(filepath.Separator)) {
			return nil, fmt.Errorf("lint: pattern %q escapes module root %s", pat, l.modRoot)
		}
		if rec {
			if err := walkPackageDirs(dir, dirs); err != nil {
				return nil, err
			}
		} else {
			ok, err := hasGoFiles(dir)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("lint: no Go files in %s", dir)
			}
			dirs[dir] = true
		}
	}
	var paths []string
	for dir := range dirs {
		paths = append(paths, l.dirImportPath(dir))
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, path := range paths {
		p, err := l.importPath(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadDir type-checks the single directory dir (which may live under
// testdata, outside the module's package tree) as if its import path
// were asPath. Module-internal imports in the directory's files
// resolve against the enclosing module, so fixture files can import
// real sqm packages.
func (l *Loader) LoadDir(dir, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.checkDir(abs, asPath)
}

// dirImportPath maps an absolute directory under the module root to
// its import path.
func (l *Loader) dirImportPath(dir string) string {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil || rel == "." {
		return l.modPath
	}
	return l.modPath + "/" + filepath.ToSlash(rel)
}

// walkPackageDirs collects every directory at or below root that holds
// at least one non-test Go file, skipping testdata, vendor, hidden
// directories, and node_modules.
func walkPackageDirs(root string, out map[string]bool) error {
	return filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || name == "node_modules" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			out[path] = true
		}
		return nil
	})
}

// hasGoFiles reports whether dir directly contains a non-test Go file
// that matches the host's build configuration at the filename level.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if isCandidateGoFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isCandidateGoFile applies the filename-level filters: non-test Go
// source, not hidden, and any _GOOS/_GOARCH suffix must match the host.
func isCandidateGoFile(name string) bool {
	if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
		strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
		return false
	}
	return matchFileSuffix(name)
}

// knownOS and knownArch are the GOOS/GOARCH values that activate the
// implicit filename build constraints (name_GOOS.go etc.). A suffix
// outside these sets is just part of the name and never filters.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "netbsd": true, "openbsd": true,
	"plan9": true, "solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixGOOS mirrors the set of GOOS values the "unix" build tag covers.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// matchFileSuffix evaluates the implicit filename constraints
// name_GOOS.go, name_GOARCH.go, and name_GOOS_GOARCH.go against the
// host. A bare "linux.go" carries no constraint: the suffix needs a
// preceding name component to activate, exactly as in go/build.
func matchFileSuffix(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	n := len(parts)
	if n >= 2 && knownArch[parts[n-1]] {
		if parts[n-1] != runtime.GOARCH {
			return false
		}
		if n >= 3 && knownOS[parts[n-2]] {
			return parts[n-2] == runtime.GOOS
		}
		return true
	}
	if n >= 2 && knownOS[parts[n-1]] {
		return parts[n-1] == runtime.GOOS
	}
	return true
}

// goMinor is the running toolchain's minor version ("go1.24.3" → 24),
// used to satisfy go1.N build tags; 0 when unparseable (devel builds),
// which then satisfies every version tag.
var goMinor = func() int {
	rest, ok := strings.CutPrefix(runtime.Version(), "go1.")
	if !ok {
		return 0
	}
	if i := strings.IndexFunc(rest, func(r rune) bool { return r < '0' || r > '9' }); i >= 0 {
		rest = rest[:i]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0
	}
	return n
}()

// tagSatisfied evaluates a //go:build expression against the host
// configuration: GOOS, GOARCH, the "gc" compiler, the "unix" umbrella
// tag, and go1.N version tags. Everything else (custom -tags values,
// other compilers) is false, matching a default `go build`.
func tagSatisfied(expr constraint.Expr) bool {
	return expr.Eval(func(tag string) bool {
		switch tag {
		case runtime.GOOS, runtime.GOARCH, "gc":
			return true
		case "unix":
			return unixGOOS[runtime.GOOS]
		}
		if rest, ok := strings.CutPrefix(tag, "go1."); ok {
			n, err := strconv.Atoi(rest)
			return err == nil && (goMinor == 0 || goMinor >= n)
		}
		return false
	})
}

// buildConstraintOf returns the file's build constraint expression, or
// nil when unconstrained. A //go:build line wins outright; otherwise
// legacy // +build lines are ANDed together, as go/build does.
func buildConstraintOf(f *ast.File) constraint.Expr {
	var plus constraint.Expr
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if constraint.IsGoBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					return expr
				}
				continue
			}
			if constraint.IsPlusBuild(c.Text) {
				if expr, err := constraint.Parse(c.Text); err == nil {
					if plus == nil {
						plus = expr
					} else {
						plus = &constraint.AndExpr{X: plus, Y: expr}
					}
				}
			}
		}
	}
	return plus
}

// Import implements types.Importer so the type-checker can resolve the
// imports of whatever package is being checked: module-internal paths
// are loaded from source, everything else is delegated to the stdlib
// source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Pkg, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.importPath(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

// importPath loads a module-internal package by import path.
func (l *Loader) importPath(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	l.loading[path] = true
	p, err := l.checkDir(dir, path)
	delete(l.loading, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// maxTypeErrors caps how many type errors a broken package's load
// error spells out before eliding the rest.
const maxTypeErrors = 5

// checkDir parses and type-checks the non-test Go files of dir under
// the import path asPath. Files excluded by their _GOOS/_GOARCH name
// suffix or by a //go:build (or legacy +build) constraint are dropped
// before type-checking, and a package that fails to type-check is
// reported with up to maxTypeErrors collected errors rather than just
// the first.
func (l *Loader) checkDir(dir, asPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if isCandidateGoFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if expr := buildConstraintOf(f); expr != nil && !tagSatisfied(expr) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s match the host build constraints", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var (
		typeErrs []string
		nErrs    int
	)
	conf := &types.Config{
		Importer: l,
		Error: func(err error) {
			nErrs++
			if len(typeErrs) < maxTypeErrors {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	pkg, err := conf.Check(asPath, l.Fset, files, info)
	if err != nil {
		msg := strings.Join(typeErrs, "\n\t")
		if msg == "" {
			msg = err.Error()
		}
		if nErrs > len(typeErrs) {
			msg += fmt.Sprintf("\n\t... and %d more", nErrs-len(typeErrs))
		}
		return nil, fmt.Errorf("lint: type-checking %s failed with %d error(s):\n\t%s", asPath, max(nErrs, 1), msg)
	}
	return &Package{Fset: l.Fset, Path: asPath, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}
