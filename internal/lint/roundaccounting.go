package lint

import (
	"go/ast"
	"go/types"
)

const (
	// bgwPkg owns the evaluator round counters.
	bgwPkg = "sqm/internal/bgw"
	// circuitPkg owns the plan executor, the one component allowed to
	// drive those counters.
	circuitPkg = "sqm/internal/circuit"
)

// AnalyzerRoundAccounting enforces that communication-round accounting
// derives from compiled execution plans, not hand bookkeeping. A
// protocol that calls AdvanceRound() on a BGW evaluator is maintaining
// its own round arithmetic — exactly the pattern the circuit compiler
// replaced, and one that silently drifts from the wire truth the
// moment the gate structure changes. Outside internal/bgw (which owns
// the counters) and internal/circuit (whose executor is the designated
// round driver), protocols must record into a circuit.Builder and let
// the plan's levels define the rounds. Other packages' own
// AdvanceRound methods (e.g. the Beaver engine's) are not affected.
var AnalyzerRoundAccounting = &Analyzer{
	Name:     "roundaccounting",
	Doc:      "manual AdvanceRound on a BGW evaluator outside internal/bgw and internal/circuit; rounds must derive from compiled plans",
	Severity: SeverityError,
	Run:      runRoundAccounting,
}

func runRoundAccounting(pass *Pass) {
	if pass.PkgPath == bgwPkg || pass.PkgPath == circuitPkg {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "AdvanceRound" {
				return true
			}
			if recv := pass.bgwReceiver(sel.X); recv != "" {
				pass.Reportf(sel.Sel.Pos(), "manual AdvanceRound on %s outside internal/bgw and internal/circuit; record the protocol into a circuit.Builder and let the compiled plan drive round accounting", recv)
			}
			return true
		})
	}
}

// bgwReceiver returns the display name of expr's type when it is a
// named type (or pointer to one) declared in internal/bgw, and ""
// otherwise.
func (p *Pass) bgwReceiver(expr ast.Expr) string {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return ""
	}
	t := types.Unalias(tv.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != bgwPkg {
		return ""
	}
	return "bgw." + obj.Name()
}
