package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos     token.Position
	endLine int      // last line the directive covers (>= pos.Line)
	checks  []string // analyzer names, or "all"
	reason  string
}

// matches reports whether the directive suppresses the given check.
func (d *ignoreDirective) matches(check string) bool {
	for _, c := range d.checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// parseIgnoreDirectives scans a package's comments for
// //lint:ignore directives. The directive grammar is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// where <reason> is mandatory prose explaining why the finding is
// acceptable. A directive suppresses matching diagnostics on its own
// line (trailing comment) and on the statement starting on its line or
// the immediately following line — anchored anywhere inside it, so a
// call spread over several lines is covered by one directive above it.
// Malformed directives are themselves reported as diagnostics so they
// cannot silently fail to suppress.
func parseIgnoreDirectives(pkgs []*Package) (directives []ignoreDirective, malformed []Diagnostic) {
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Check:    "lint",
							Severity: SeverityError,
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					directives = append(directives, ignoreDirective{
						pos:     pos,
						endLine: directiveEndLine(p, f, pos.Line),
						checks:  strings.Split(fields[0], ","),
						reason:  strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return directives, malformed
}

// directiveEndLine computes the last source line a directive at the
// given line covers: by default the next line, extended to the full
// extent of the outermost statement or declaration spec starting on the
// directive's line (trailing comment) or the line below it. Compound
// statements (if/for/switch/select) only contribute their header up to
// the opening brace — a directive above an if must not blanket the
// whole body.
func directiveEndLine(p *Package, f *ast.File, line int) int {
	end := line + 1
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case ast.Stmt, *ast.ValueSpec, *ast.ImportSpec, *ast.TypeSpec:
		default:
			return true
		}
		stop := n.End()
		switch s := n.(type) {
		case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
			return true // structural; descend to the real statements
		case *ast.IfStmt:
			stop = s.Body.Lbrace
		case *ast.ForStmt:
			stop = s.Body.Lbrace
		case *ast.RangeStmt:
			stop = s.Body.Lbrace
		case *ast.SwitchStmt:
			stop = s.Body.Lbrace
		case *ast.TypeSwitchStmt:
			stop = s.Body.Lbrace
		case *ast.SelectStmt:
			stop = s.Body.Lbrace
		}
		start := p.Fset.Position(n.Pos()).Line
		if start != line && start != line+1 {
			return true // an inner statement may still start on the line
		}
		if e := p.Fset.Position(stop).Line; e > end {
			end = e
		}
		return false // outermost match wins
	})
	return end
}

// applyIgnores splits diagnostics into kept and suppressed according
// to the directives.
func applyIgnores(diags []Diagnostic, directives []ignoreDirective) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		ignored := false
		for i := range directives {
			dir := &directives[i]
			if dir.pos.Filename != d.Pos.Filename || !dir.matches(d.Check) {
				continue
			}
			if d.Pos.Line >= dir.pos.Line && d.Pos.Line <= dir.endLine {
				ignored = true
				break
			}
		}
		if ignored {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
