package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	checks []string // analyzer names, or "all"
	reason string
}

// matches reports whether the directive suppresses the given check.
func (d *ignoreDirective) matches(check string) bool {
	for _, c := range d.checks {
		if c == check || c == "all" {
			return true
		}
	}
	return false
}

// parseIgnoreDirectives scans a package's comments for
// //lint:ignore directives. The directive grammar is
//
//	//lint:ignore <check>[,<check>...] <reason>
//
// where <reason> is mandatory prose explaining why the finding is
// acceptable. A directive suppresses matching diagnostics on its own
// line (trailing comment) and on the immediately following line
// (standalone comment above the offending statement). Malformed
// directives are themselves reported as diagnostics so they cannot
// silently fail to suppress.
func parseIgnoreDirectives(pkgs []*Package) (directives []ignoreDirective, malformed []Diagnostic) {
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
					if !ok {
						continue
					}
					pos := p.Fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						malformed = append(malformed, Diagnostic{
							Check:    "lint",
							Severity: SeverityError,
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want //lint:ignore <check> <reason>",
						})
						continue
					}
					directives = append(directives, ignoreDirective{
						pos:    pos,
						checks: strings.Split(fields[0], ","),
						reason: strings.Join(fields[1:], " "),
					})
				}
			}
		}
	}
	return directives, malformed
}

// applyIgnores splits diagnostics into kept and suppressed according
// to the directives.
func applyIgnores(diags []Diagnostic, directives []ignoreDirective) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		ignored := false
		for i := range directives {
			dir := &directives[i]
			if dir.pos.Filename != d.Pos.Filename || !dir.matches(d.Check) {
				continue
			}
			if dir.pos.Line == d.Pos.Line || dir.pos.Line == d.Pos.Line-1 {
				ignored = true
				break
			}
		}
		if ignored {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}
