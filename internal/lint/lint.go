// Package lint is a self-contained static-analysis framework for the
// SQM repository, built on the standard library's go/parser, go/ast,
// go/types and go/token only (no x/tools, matching the repo's
// zero-dependency rule). It exists because SQM's correctness claims
// rest on invariants the Go compiler cannot check: all randomness must
// flow through the seeded samplers in internal/randx, secret shares
// must never reach a formatter or telemetry sink, modular arithmetic
// on field.Elem must route through internal/field's Mersenne
// reduction, floating-point calibration code must not compare with ==,
// and panics are reserved for designated invariant helpers.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis at
// a fraction of the surface: an Analyzer holds a name, a doc string
// and a Run function; a Pass hands the Run function one type-checked
// package and a Report sink; the runner in run.go loads packages,
// applies every analyzer, and filters diagnostics through
// //lint:ignore suppression directives.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity classifies a diagnostic.
type Severity string

const (
	// SeverityError marks a violation of a hard repo invariant.
	SeverityError Severity = "error"
	// SeverityWarning marks a finding that merits review but does not
	// break an invariant on its own.
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding, positioned in the loaded file set.
type Diagnostic struct {
	// Check is the name of the analyzer that produced the finding.
	Check string
	// Severity is the analyzer's severity class.
	Severity Severity
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation.
	Message string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	// Fset positions every file of the load.
	Fset *token.FileSet
	// PkgPath is the import path of the package under analysis.
	PkgPath string
	// Files are the parsed non-test source files of the package.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos with the analyzer's severity.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.analyzer.Name,
		Severity: p.analyzer.Severity,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Per-package checks set Run; whole-module
// interprocedural checks set RunModule and are invoked once per load
// with the module graph. Exactly one of the two must be non-nil.
type Analyzer struct {
	// Name identifies the check in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-line description shown by sqmlint -list.
	Doc string
	// Severity is attached to every diagnostic the check reports.
	Severity Severity
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunModule inspects the whole loaded package set at once, with
	// the interprocedural dataflow graph available.
	RunModule func(mp *ModulePass)
	// Explain documents the invariant for sqmlint -explain.
	Explain *Explanation
}

// Explanation is the -explain text of one analyzer: the invariant it
// enforces and, for dataflow checks, its registries and an example
// witness path.
type Explanation struct {
	// Invariant is the prose statement of the rule.
	Invariant string
	// Sources, Sinks, Sanitizers list the registries (empty for purely
	// syntactic checks).
	Sources    []string
	Sinks      []string
	Sanitizers []string
	// Example is a representative diagnostic, witness path included.
	Example string
}

// ModulePass carries the whole-module view through a RunModule
// analyzer.
type ModulePass struct {
	// Module is the interprocedural graph over every loaded package.
	Module *Module

	analyzer *Analyzer
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos with the analyzer's severity.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.analyzer.Name,
		Severity: p.analyzer.Severity,
		Pos:      p.Module.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the registered analyzer suite, sorted by name. Each
// entry encodes one SQM invariant; see DESIGN.md "Static analysis".
func All() []*Analyzer {
	as := []*Analyzer{
		AnalyzerRandDet,
		AnalyzerBlockingRecv,
		AnalyzerFieldOps,
		AnalyzerShareTaint,
		AnalyzerDPBudget,
		AnalyzerCTBranch,
		AnalyzerFloatEq,
		AnalyzerPanicPolicy,
		AnalyzerRoundAccounting,
	}
	sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
	return as
}

// Lookup returns the registered analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// sortDiagnostics orders findings by file, line, column, check name,
// then message, so output is deterministic across runs regardless of
// package load order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
}

// dedupDiagnostics removes identical findings from a sorted slice:
// overlapping package patterns can analyze one file twice, and each
// copy would otherwise report the same (file, line, check) diagnostic.
func dedupDiagnostics(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 {
			p := out[len(out)-1]
			if p.Check == d.Check && p.Pos.Filename == d.Pos.Filename &&
				p.Pos.Line == d.Pos.Line && p.Pos.Column == d.Pos.Column &&
				p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}
