package lint

import (
	"go/types"
	"strings"
)

// dpNoiseSources are the DP mechanism draws and noisy openings of the
// paper's distributed mechanism: every value derived from one is a
// privacy release in the making. (The continuous Gaussian samplers are
// deliberately absent — they are dual-use: weight init, synthetic data,
// and power iteration draw from the same RNG surface.)
var dpNoiseSources = map[string]bool{
	"(sqm/internal/randx.RNG).Skellam":               true,
	"(sqm/internal/randx.RNG).SkellamVec":            true,
	"(sqm/internal/randx.RNG).DiscreteGaussian":      true,
	"(sqm/internal/randx.RNG).DiscreteGaussianVec":   true,
	"(sqm/internal/randx.RNG).DiscreteLaplace":       true,
	"(sqm/internal/secagg.Group).AggregateNoise":     true,
	"(sqm/internal/secagg.Group).AggregateNoiseOver": true,
}

// dpPrintSinks are the fmt functions that write (Sprint* only formats;
// the string it builds keeps the taint and is caught when printed).
var dpPrintSinks = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
}

// dpSinkPkgs release values wholesale: loggers, telemetry, and the
// CSV/model writers the CLIs persist results with.
var dpSinkPkgs = map[string]bool{
	"log":                  true,
	"log/slog":             true,
	"sqm/internal/obs":     true,
	"sqm/internal/csvio":   true,
	"sqm/internal/modelio": true,
}

// dpExemptPkgs implement the mechanism itself: inside secagg the freshly
// drawn noise is masked and crosses the wire as part of the aggregation
// protocol, which is the release the *caller* must account for.
var dpExemptPkgs = map[string]bool{
	"sqm/internal/secagg": true,
	"sqm/internal/randx":  true,
}

// dpEgressPkgs are the public API boundary: a noise-derived value
// returned from an exported function here leaves the library's control,
// so the accountant must have been consulted on the way.
var dpEgressPkgs = map[string]bool{
	"sqm": true,
}

const accountantPkg = "sqm/internal/dp"

// AnalyzerDPBudget enforces the accounting invariant of the shuffle/
// distributed DP literature: every noise draw that escapes the party —
// over transport, through telemetry or CLI output, into a results file,
// or out of the public API — must pass through dp.Accountant on its
// call path. An unaccounted release silently spends ε the ledger never
// sees, which voids the composition theorem the deployment relies on.
var AnalyzerDPBudget = &Analyzer{
	Name:      "dpbudget",
	Doc:       "DP noise draws and noisy aggregates escaping via transport/obs/CLI output or exported returns without dp.Accountant on the call path",
	Severity:  SeverityError,
	RunModule: runDPBudget,
	Explain: &Explanation{
		Invariant: "Every DP release must be metered: a value derived from a Skellam/discrete-Gaussian/discrete-Laplace draw or a noisy secagg aggregate may only escape the party (transport, obs, printed output, results files, exported facade returns) if a function on its dataflow path calls the dp.Accountant. Unaccounted releases spend privacy budget the ledger never records.",
		Sources: []string{
			"(randx.RNG).Skellam/SkellamVec/DiscreteGaussian/DiscreteGaussianVec/DiscreteLaplace",
			"(secagg.Group).AggregateNoise/AggregateNoiseOver (noisy opened aggregates)",
		},
		Sinks: []string{
			"fmt.Print*/Fprint*, log, log/slog, sqm/internal/obs",
			"csvio/modelio writers (results files)",
			"transport Send/SendN payloads",
			"returns of exported functions in the sqm facade package",
		},
		Sanitizers: []string{
			"any function on the witness path that calls a *dp.Accountant method (AddSkellam, AddSubsampledSkellam, AddGaussian, AddRDP, Observe, ...)",
		},
		Example: `run.go:80:14: dpbudget: DP-noisy value escapes via fmt.Println without accountant coverage [source (randx.RNG).Skellam (draw.go:9) → result 0 of draw (draw.go:9) → var v (run.go:70) → sink (run.go:80)]`,
	},
}

func runDPBudget(mp *ModulePass) {
	m := mp.Module

	// A function that consults the accountant anywhere in its body
	// covers every release flowing through it: its outputs are
	// accounted values, so it acts as a sanitizer for this run, and
	// sinks inside it are accounted releases.
	covered := make(map[*types.Func]bool)
	san := make(map[string]bool)
	for _, cs := range m.Calls {
		if cs.Fn == nil || cs.Callee == nil {
			continue
		}
		if strings.HasPrefix(FuncKey(cs.Callee), "("+accountantPkg+".Accountant).") {
			if !covered[cs.Fn] {
				covered[cs.Fn] = true
				san[FuncKey(cs.Fn)] = true
			}
		}
	}
	res := m.Propagate(TaintSpec{FuncSources: dpNoiseSources, Sanitizers: san})

	for _, cs := range m.Calls {
		label := dpSinkLabel(cs)
		if label == "" || dpExemptPkgs[cs.Pkg.Path] {
			continue
		}
		// A sink package calling into itself is internal plumbing; the
		// release boundary is the call that enters the package.
		if cs.Callee != nil && cs.Callee.Pkg() != nil && cs.Callee.Pkg().Path() == cs.Pkg.Path {
			continue
		}
		if cs.Fn != nil && covered[cs.Fn] {
			continue
		}
		for _, arg := range cs.Call.Args {
			n, w := firstTainted(m, res, cs.Pkg, cs.Fn, arg)
			if n == nil {
				continue
			}
			mp.Reportf(arg.Pos(), "DP-noisy value escapes via %s without dp.Accountant coverage on its call path; account the release before it leaves the party [%s → sink (%s)]",
				label, w, m.PosString(arg.Pos()))
		}
	}
	for _, rs := range m.Returns {
		if !dpEgressPkgs[rs.Pkg.Path] || dpExemptPkgs[rs.Pkg.Path] {
			continue
		}
		if covered[rs.Fn] {
			continue
		}
		n, w := firstTainted(m, res, rs.Pkg, rs.Fn, rs.Expr)
		if n == nil {
			continue
		}
		mp.Reportf(rs.Expr.Pos(), "DP-noisy value returned from exported %s without dp.Accountant coverage on its call path; the facade is a release boundary [%s → exported return (%s)]",
			shortFuncName(rs.Fn), w, m.PosString(rs.Expr.Pos()))
	}
}

// dpSinkLabel classifies a call as a dpbudget release sink ("" if not).
func dpSinkLabel(cs *CallSite) string {
	fn := cs.Callee
	if fn == nil {
		return ""
	}
	key := FuncKey(fn)
	if dpPrintSinks[key] {
		return key
	}
	if fn.Pkg() != nil && dpSinkPkgs[fn.Pkg().Path()] {
		return fn.Pkg().Path()
	}
	if isTransportSend(fn) {
		return "transport payload"
	}
	if returnsAttr(fn) {
		return "obs.Attr constructor"
	}
	return ""
}
