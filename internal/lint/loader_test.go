package lint

import (
	"go/types"
	"runtime"
	"strings"
	"testing"
)

func TestLoaderHandlesGenerics(t *testing.T) {
	pkg, res := loadFixture(t, "generics", "fixture/generics")
	if pkg.Pkg.Scope().Lookup("Map") == nil {
		t.Error("generic function Map missing from package scope")
	}
	if got := len(res.Diagnostics) + len(res.Suppressed); got != 0 {
		t.Errorf("generic fixture should be clean, got %d finding(s): %v", got, res.Diagnostics)
	}
}

func TestLoaderFiltersBuildTaggedFiles(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("the fixture's _windows.go variant collides with on_gc.go on windows")
	}
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/buildtags", "fixture/buildtags")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	// buildtags.go plus on_gc.go survive; off_never.go falls to its
	// //go:build line and off_windows.go to its filename suffix. Any
	// filtering failure would also fail type-checking outright, since
	// every variant redeclares `marker`.
	if len(pkg.Files) != 2 {
		t.Fatalf("loaded %d files, want 2 (common + gc variant)", len(pkg.Files))
	}
	obj := pkg.Pkg.Scope().Lookup("marker")
	c, ok := obj.(*types.Const)
	if !ok {
		t.Fatalf("marker = %v, want a constant", obj)
	}
	if got := c.Val().String(); got != `"gc"` {
		t.Errorf("marker = %s, want \"gc\" (the //go:build gc variant)", got)
	}
}

func TestLoaderReportsBrokenPackage(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir("testdata/src/broken", "fixture/broken")
	if err == nil {
		t.Fatal("broken package must fail to load, got nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "type-checking") {
		t.Errorf("error does not identify the type-check phase:\n%s", msg)
	}
	// The fixture plants three independent errors; seeing more than one
	// in the message proves the collector kept going past the first.
	for _, frag := range []string{"missingIdent", "too many arguments"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error does not mention %q (multi-error collection broken):\n%s", frag, msg)
		}
	}
}

func TestFileSuffixMatching(t *testing.T) {
	otherOS := "windows"
	if runtime.GOOS == "windows" {
		otherOS = "linux"
	}
	otherArch := "mips64"
	if runtime.GOARCH == "mips64" {
		otherArch = "amd64"
	}
	cases := []struct {
		name string
		want bool
	}{
		{"plain.go", true},
		// A bare OS name with nothing before it is not a constraint.
		{"linux.go", true},
		{"x_" + runtime.GOOS + ".go", true},
		{"x_" + runtime.GOARCH + ".go", true},
		{"x_" + runtime.GOOS + "_" + runtime.GOARCH + ".go", true},
		{"x_" + otherOS + ".go", false},
		{"x_" + otherArch + ".go", false},
		{"x_" + otherOS + "_" + runtime.GOARCH + ".go", false},
		// An unknown trailing word is just part of the name.
		{"x_helper.go", true},
	}
	for _, c := range cases {
		if got := matchFileSuffix(c.name); got != c.want {
			t.Errorf("matchFileSuffix(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
