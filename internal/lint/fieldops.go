package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fieldPkg is the package whose helpers own all modular arithmetic.
const fieldPkg = "sqm/internal/field"

// AnalyzerFieldOps enforces that modular arithmetic on field.Elem
// routes through internal/field's overflow-safe Mersenne reduction.
// A raw +, -, *, / or % on Elem values (or on values built from the
// field modulus) silently computes in uint64 arithmetic: sums wrap at
// 2^64 instead of reducing mod p = 2^61 - 1, products overflow, and
// the resulting shares decode to garbage only after reconstruction —
// the worst kind of MPC bug. Comparisons and conversions are fine;
// arithmetic must use field.Add/Sub/Neg/Mul/Exp/Inv.
var AnalyzerFieldOps = &Analyzer{
	Name:     "fieldops",
	Doc:      "raw arithmetic on field.Elem or the field modulus outside internal/field; use field.Add/Sub/Mul/... helpers",
	Severity: SeverityError,
	Run:      runFieldOps,
}

// arithmeticOps are the binary operators that perform arithmetic (as
// opposed to comparison, logic, or bit shifting by a plain count).
var arithmeticOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true, token.REM: true,
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true, token.MUL_ASSIGN: true,
	token.QUO_ASSIGN: true, token.REM_ASSIGN: true,
}

func runFieldOps(pass *Pass) {
	if pass.PkgPath == fieldPkg {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if arithmeticOps[n.Op] && (pass.isFieldArith(n.X) || pass.isFieldArith(n.Y)) {
					pass.Reportf(n.OpPos, "raw operator %s on field.Elem outside internal/field; use field helpers for modular arithmetic", n.Op)
				}
			case *ast.AssignStmt:
				if arithmeticOps[n.Tok] {
					for _, lhs := range n.Lhs {
						if pass.isFieldArith(lhs) {
							pass.Reportf(n.TokPos, "raw operator %s on field.Elem outside internal/field; use field helpers for modular arithmetic", n.Tok)
							break
						}
					}
				}
			case *ast.IncDecStmt:
				if pass.isFieldArith(n.X) {
					pass.Reportf(n.TokPos, "raw operator %s on field.Elem outside internal/field; use field helpers for modular arithmetic", n.Tok)
				}
			case *ast.UnaryExpr:
				if n.Op == token.SUB && pass.isFieldArith(n.X) {
					pass.Reportf(n.OpPos, "raw negation of field.Elem outside internal/field; use field.Neg")
				}
			}
			return true
		})
	}
}

// isFieldArith reports whether expr is a field.Elem value or a direct
// use of the field modulus constant — the operands whose arithmetic
// must go through internal/field.
func (p *Pass) isFieldArith(expr ast.Expr) bool {
	if tv, ok := p.Info.Types[expr]; ok && isNamedType(tv.Type, fieldPkg, "Elem") {
		return true
	}
	return p.usesFieldModulus(expr)
}

// usesFieldModulus reports whether expr is (an identifier or selector
// resolving to) the Modulus constant of internal/field.
func (p *Pass) usesFieldModulus(expr ast.Expr) bool {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	c, ok := obj.(*types.Const)
	return ok && c.Name() == "Modulus" && c.Pkg() != nil && c.Pkg().Path() == fieldPkg
}

// isNamedType reports whether t (after stripping aliases) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
