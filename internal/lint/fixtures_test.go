package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// wantRe extracts the quoted regexps of a // want "re" ["re" ...]
// comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one // want marker.
type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// sharedLoader memoizes one Loader across the test binary: fixture
// loads then reuse the (expensive) source-imported stdlib packages.
// Tests run serially, so the unsynchronized loader caches are safe.
var sharedLoader = sync.OnceValues(func() (*Loader, error) { return NewLoader(".") })

// loadFixture type-checks testdata/src/<name> under the given import
// path and runs the full analyzer suite over it.
func loadFixture(t *testing.T, name, asPath string) (*Package, Result) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	dir := filepath.Join("testdata", "src", name)
	pkg, err := loader.LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg, Run([]*Package{pkg}, All())
}

// collectWants parses the // want markers of a loaded package, keyed
// by file:line.
func collectWants(t *testing.T, pkg *Package) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re})
				}
			}
		}
	}
	return wants
}

// checkAgainstWants matches kept diagnostics against the want markers:
// every diagnostic must be expected, and every expectation must fire
// exactly once.
func checkAgainstWants(t *testing.T, pkg *Package, res Result) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range res.Diagnostics {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, e := range wants[key] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, es := range wants {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
			}
		}
	}
}

// fixtureCase drives one analyzer fixture: all wants must fire, and
// the fixture's //lint:ignore directives must suppress exactly
// wantSuppressed findings of the named check.
func fixtureCase(t *testing.T, name, asPath, check string, wantSuppressed int) {
	t.Helper()
	pkg, res := loadFixture(t, name, asPath)
	checkAgainstWants(t, pkg, res)
	if len(res.Diagnostics) == 0 {
		t.Errorf("fixture %s caught no violations; each analyzer must demonstrate at least one", name)
	}
	got := 0
	for _, d := range res.Suppressed {
		if d.Check == check {
			got++
		}
	}
	if got != wantSuppressed {
		t.Errorf("fixture %s: suppressed %d %s finding(s), want %d", name, got, check, wantSuppressed)
	}
}

func TestRandDetFixture(t *testing.T) {
	fixtureCase(t, "randdet", "fixture/randdet", "randdet", 1)
}

func TestRandDetExemptsRandxPackage(t *testing.T) {
	// The same fixture loaded under the sampler package's own import
	// path must produce no randdet findings at all.
	pkg, res := loadFixture(t, "randdet", "sqm/internal/randx")
	for _, d := range append(res.Diagnostics, res.Suppressed...) {
		if d.Check == "randdet" {
			t.Errorf("randdet fired inside its exempt package: %s", d)
		}
	}
	_ = pkg
}

func TestFieldOpsFixture(t *testing.T) {
	fixtureCase(t, "fieldops", "fixture/fieldops", "fieldops", 1)
}

func TestShareTaintFixture(t *testing.T) {
	// 1 single-line suppression + 2 diagnostics anchored inside the
	// multi-line call covered by one directive.
	fixtureCase(t, "sharetaint", "fixture/sharetaint", "sharetaint", 3)
}

func TestShareTaintAttrFixture(t *testing.T) {
	fixtureCase(t, "sharetaintattr", "fixture/sharetaintattr", "sharetaint", 1)
}

func TestDPBudgetFixture(t *testing.T) {
	fixtureCase(t, "dpbudget", "fixture/dpbudget", "dpbudget", 1)
}

func TestDPBudgetFacadeEgress(t *testing.T) {
	// Loaded under the sqm facade import path, exported returns are
	// release boundaries.
	pkg, res := loadFixture(t, "dpbudgetfacade", "sqm")
	checkAgainstWants(t, pkg, res)
	if len(res.Diagnostics) == 0 {
		t.Error("facade fixture caught no egress violations")
	}
}

func TestCTBranchFixture(t *testing.T) {
	fixtureCase(t, "ctbranch", "fixture/ctbranch", "ctbranch", 1)
}

func TestFloatEqFixture(t *testing.T) {
	fixtureCase(t, "floateq", "fixture/floateq", "floateq", 1)
}

func TestBlockingRecvFixture(t *testing.T) {
	fixtureCase(t, "blockingrecv", "fixture/blockingrecv", "blockingrecv", 1)
}

func TestBlockingRecvArmedPackageIsSilent(t *testing.T) {
	// One SetRecvTimeout call anywhere marks the package deadline-aware:
	// its receives must produce no blockingrecv findings at all.
	_, res := loadFixture(t, "blockingrecvarmed", "fixture/blockingrecvarmed")
	for _, d := range append(res.Diagnostics, res.Suppressed...) {
		if d.Check == "blockingrecv" {
			t.Errorf("blockingrecv fired in a deadline-aware package: %s", d)
		}
	}
}

func TestPanicPolicyFixture(t *testing.T) {
	fixtureCase(t, "panicpolicy", "fixture/panicpolicy", "panicpolicy", 1)
}

func TestPanicPolicyStrictOnExportedSurfaces(t *testing.T) {
	// Loaded under internal/cli's import path, even invariant panics
	// are banned.
	pkg, res := loadFixture(t, "panicstrict", "sqm/internal/cli")
	checkAgainstWants(t, pkg, res)
	if len(res.Diagnostics) != 2 {
		t.Errorf("want 2 strict-mode findings, got %d: %v", len(res.Diagnostics), res.Diagnostics)
	}
}

func TestRoundAccountingFixture(t *testing.T) {
	fixtureCase(t, "roundaccounting", "fixture/roundaccounting", "roundaccounting", 1)
}

func TestRoundAccountingExemptsCircuitPackage(t *testing.T) {
	// The plan executor is the designated round driver: the same fixture
	// loaded under internal/circuit's import path must stay silent.
	_, res := loadFixture(t, "roundaccounting", "sqm/internal/circuit")
	for _, d := range append(res.Diagnostics, res.Suppressed...) {
		if d.Check == "roundaccounting" {
			t.Errorf("roundaccounting fired inside its exempt package: %s", d)
		}
	}
}

func TestMalformedIgnoreDirective(t *testing.T) {
	_, res := loadFixture(t, "badignore", "fixture/badignore")
	var gotLint, gotFloat bool
	for _, d := range res.Diagnostics {
		switch d.Check {
		case "lint":
			if !strings.Contains(d.Message, "malformed //lint:ignore") {
				t.Errorf("lint diagnostic has wrong message: %s", d)
			}
			gotLint = true
		case "floateq":
			gotFloat = true
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !gotLint {
		t.Error("malformed directive was not reported")
	}
	if !gotFloat {
		t.Error("malformed directive wrongly suppressed the floateq finding")
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("malformed directive suppressed %d finding(s)", len(res.Suppressed))
	}
}

// nodeCount guards against fixtures silently losing their package
// docs: every fixture file must still parse with comments attached,
// since both the want markers and the ignore directives ride on them.
func TestFixtureCommentsLoaded(t *testing.T) {
	pkg, _ := loadFixture(t, "floateq", "fixture/floateq-comments")
	n := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(ast.Node) bool { n++; return true })
		if len(f.Comments) == 0 {
			t.Fatalf("fixture file lost its comments; want markers cannot work")
		}
	}
	if n == 0 {
		t.Fatal("fixture parsed to an empty AST")
	}
}
