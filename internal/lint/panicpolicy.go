package lint

import (
	"go/ast"
	"go/types"
)

// invariantPkg is the designated invariant-helper package.
const invariantPkg = "sqm/internal/invariant"

// errorOnlyPkgs are the exported API surfaces: user input flows in
// here, so failures must surface as returned errors, never panics —
// not even invariant panics.
var errorOnlyPkgs = map[string]bool{
	"sqm":                   true,
	"sqm/internal/protocol": true,
	"sqm/internal/cli":      true,
}

// AnalyzerPanicPolicy enforces the repo's panic policy: exported API
// surfaces (package sqm, internal/protocol, internal/cli) return
// errors and may not panic at all; internal library code may panic
// only on broken internal invariants, and must say so by building the
// payload with invariant.Violation — panic(invariant.Violation(...)).
// A bare panic("...") is indistinguishable from a leftover debug
// crash, cannot be classified by recover sites, and evades the
// error-path review that the distributed protocol's cleanup logic
// depends on.
var AnalyzerPanicPolicy = &Analyzer{
	Name:     "panicpolicy",
	Doc:      "panic outside the policy: exported API must return errors; library panics must carry an invariant.Violation payload",
	Severity: SeverityError,
	Run:      runPanicPolicy,
}

func runPanicPolicy(pass *Pass) {
	if pass.PkgPath == invariantPkg {
		return
	}
	strict := errorOnlyPkgs[pass.PkgPath]
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !pass.isBuiltinPanic(call) {
				return true
			}
			if strict {
				pass.Reportf(call.Pos(), "panic on an exported API surface; return a wrapped error instead")
				return true
			}
			if len(call.Args) == 1 && pass.isInvariantViolation(call.Args[0]) {
				return true
			}
			pass.Reportf(call.Pos(), "bare panic; broken internal invariants must use panic(invariant.Violation(...)), recoverable failures must return errors")
			return true
		})
	}
}

// isBuiltinPanic reports whether call invokes the predeclared panic.
func (p *Pass) isBuiltinPanic(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := p.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// isInvariantViolation reports whether expr is a direct call to
// invariant.Violation.
func (p *Pass) isInvariantViolation(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := p.Info.Uses[id].(*types.Func)
	return ok && fn.Name() == "Violation" && fn.Pkg() != nil && fn.Pkg().Path() == invariantPkg
}
