package lint

import (
	"go/types"
	"sort"
	"strings"
)

// TaintSpec parameterizes one propagation run over the module graph.
// The graph itself is kind-agnostic; each analyzer supplies its own
// sources and sanitizers and interprets sinks over the result.
type TaintSpec struct {
	// TypeSources taints every node whose object type is, or
	// structurally contains, one of the named types
	// (package path -> type names). Struct field nodes seed by the
	// field's own declared type.
	TypeSources map[string][]string
	// FuncSources taints the results of calls to these functions,
	// keyed by FuncKey ("pkg.Fn" or "(pkg.Type).Method").
	FuncSources map[string]bool
	// Sanitizers are declassification points: their results are clean
	// by fiat, taint never flows out of them, and taint never enters
	// their bodies. Keyed by FuncKey. Calls through interfaces match on
	// the interface method's key.
	Sanitizers map[string]bool
}

// TaintResult is the fixed point of one propagation: every reachable
// node with the edge that first tainted it, so witness paths can be
// reconstructed without re-running the analysis.
type TaintResult struct {
	m      *Module
	parent map[*node]tEdge // zero-edge (to==nil) for seeds
	seed   map[*node]string
	spec   TaintSpec
}

// Propagate runs taint from the spec's sources to a fixed point over
// the assignment graph, context-sensitively at calls into analyzed
// functions:
//
//  1. per-function summaries (which inputs flow to which results and
//     mutated inputs) are computed to a fixed point, so flow *through*
//     a callee only surfaces at call sites whose own arguments are
//     tainted;
//  2. a generative phase propagates source- and type-seeds without
//     entering callees through argument edges; a result node tainted
//     here is tainted independent of any caller, so it fans out to
//     every call site of its function;
//  3. a final phase re-runs with argument->parameter entry edges
//     enabled, so sinks inside a callee fire when a caller passes
//     taint in — without fanning the callee's results back out to
//     unrelated callers.
//
// The worklists are seeded and drained in node creation order, so
// parents — and therefore witness paths — are deterministic.
func (m *Module) Propagate(spec TaintSpec) *TaintResult {
	blocked := func(n *node) bool {
		owner := m.resultOwner[n]
		return owner != nil && spec.Sanitizers[FuncKey(owner)]
	}
	sums := m.summarize(spec, blocked)
	res := &TaintResult{
		m:      m,
		parent: make(map[*node]tEdge),
		seed:   make(map[*node]string),
		spec:   spec,
	}

	var queue []*node
	visit := func(n *node, e tEdge) {
		if n == nil {
			return
		}
		if _, seen := res.parent[n]; seen {
			return
		}
		if blocked(n) {
			return
		}
		res.parent[n] = e
		queue = append(queue, n)
	}
	step := func(n *node, allowEntry, fanout bool) {
		for _, e := range n.out {
			if e.entry && !allowEntry {
				continue
			}
			if e.via != nil && spec.Sanitizers[FuncKey(e.via)] {
				continue
			}
			visit(e.to, tEdge{to: n, via: e.via, pos: e.pos})
		}
		// Summary application: flow through an analyzed callee surfaces
		// at this site's result (or mutated-argument) nodes.
		for _, si := range m.siteIn[n] {
			if spec.Sanitizers[FuncKey(si.site.callee)] {
				continue
			}
			outs := sums[si.site.callee]
			if si.idx >= len(outs) {
				continue
			}
			var idxs []int
			for j := range outs[si.idx] {
				idxs = append(idxs, j)
			}
			sort.Ints(idxs)
			for _, j := range idxs {
				pe := tEdge{to: n, via: si.site.callee, pos: si.site.call.Pos()}
				if j < len(si.site.results) {
					visit(si.site.results[j], pe)
				} else if mi := j - len(si.site.results); mi < len(si.site.inputs) {
					for _, t := range si.site.inputs[mi] {
						visit(t, pe)
					}
				}
			}
		}
		if fanout {
			for _, t := range m.resultFan[n] {
				visit(t, tEdge{to: n, via: m.resultOwner[t], pos: t.pos})
			}
		}
	}

	// Seeds, in node creation order.
	for _, n := range m.nodeList {
		if blocked(n) {
			continue
		}
		var why string
		if owner := m.resultOwner[n]; owner != nil && spec.FuncSources[FuncKey(owner)] {
			why = "source " + shortFuncName(owner)
		} else if n.obj != nil && spec.TypeSources != nil {
			if name, ok := containsNamedType(n.obj.Type(), spec.TypeSources); ok {
				why = name + " " + n.desc
			}
		}
		if why == "" {
			continue
		}
		res.seed[n] = why
		res.parent[n] = tEdge{}
		queue = append(queue, n)
	}
	// Phase 2: generative propagation (no entry edges, results fan out).
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		step(n, false, true)
	}
	// Phase 3: entry edges enabled, no fanout. Re-scan the tainted
	// frontier in deterministic order; already-visited targets are
	// skipped, so only flows reachable through entry edges expand.
	for _, n := range m.nodeList {
		if _, ok := res.parent[n]; ok {
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		step(n, true, false)
	}
	return res
}

// summarize computes, per analyzed function, which inputs (receiver
// first, then parameters) flow to which outputs: result j maps to
// output index j, a mutated input i to index len(results)+i. The fixed
// point iterates because a summary can depend on callee summaries
// (including recursively).
func (m *Module) summarize(spec TaintSpec, blocked func(*node) bool) map[*types.Func][]map[int]bool {
	sums := make(map[*types.Func][]map[int]bool)
	var fns []*FuncInfo
	for _, fi := range m.funcList {
		if fi.Decl == nil || fi.Decl.Body == nil {
			continue
		}
		ins := m.inputNodes(fi.Fn)
		s := make([]map[int]bool, len(ins))
		for i := range s {
			s[i] = make(map[int]bool)
		}
		sums[fi.Fn] = s
		fns = append(fns, fi)
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range fns {
			if spec.Sanitizers[FuncKey(fi.Fn)] {
				continue // results are blocked; no summary needed
			}
			sig := fi.Fn.Type().(*types.Signature)
			ins := m.inputNodes(fi.Fn)
			outIdx := make(map[*node]int)
			for j, rn := range m.resultsOf(sig) {
				if rn != nil {
					outIdx[rn] = j
				}
			}
			nr := sig.Results().Len()
			for i, pn := range ins {
				if pn == nil {
					continue
				}
				if _, ok := outIdx[pn]; !ok {
					outIdx[pn] = nr + i
				}
			}
			for i, pn := range ins {
				if pn == nil {
					continue
				}
				reach := m.reachFrom(pn, spec, blocked, sums)
				for o, j := range outIdx {
					if o == pn || !reach[o] || sums[fi.Fn][i][j] {
						continue
					}
					sums[fi.Fn][i][j] = true
					changed = true
				}
			}
		}
	}
	return sums
}

// reachFrom is the summary-time reachability query: plain edges plus
// callee-summary jumps, never argument->parameter entry edges (the
// callee's summary already accounts for flow through it) and never
// result fan-out.
func (m *Module) reachFrom(start *node, spec TaintSpec, blocked func(*node) bool, sums map[*types.Func][]map[int]bool) map[*node]bool {
	seen := map[*node]bool{start: true}
	queue := []*node{start}
	push := func(t *node) {
		if t != nil && !seen[t] && !blocked(t) {
			seen[t] = true
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.out {
			if e.entry {
				continue
			}
			if e.via != nil && spec.Sanitizers[FuncKey(e.via)] {
				continue
			}
			push(e.to)
		}
		for _, si := range m.siteIn[n] {
			if spec.Sanitizers[FuncKey(si.site.callee)] {
				continue
			}
			outs := sums[si.site.callee]
			if si.idx >= len(outs) {
				continue
			}
			for j := range outs[si.idx] {
				if j < len(si.site.results) {
					push(si.site.results[j])
				} else if mi := j - len(si.site.results); mi < len(si.site.inputs) {
					for _, t := range si.site.inputs[mi] {
						push(t)
					}
				}
			}
		}
	}
	return seen
}

// Tainted reports whether n was reached.
func (r *TaintResult) Tainted(n *node) bool {
	_, ok := r.parent[n]
	return ok
}

// pathTo returns the node chain from a seed to n (inclusive).
func (r *TaintResult) pathTo(n *node) []*node {
	var rev []*node
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		e, ok := r.parent[cur]
		if !ok || e.to == nil {
			break
		}
		cur = e.to
		if len(rev) > 64 { // cycle guard; parents form a tree, but stay safe
			break
		}
	}
	path := make([]*node, len(rev))
	for i, n := range rev {
		path[len(rev)-1-i] = n
	}
	return path
}

// PathFuncs returns the declared functions traversed by the witness
// path into n, including the seed's and n's own enclosing functions and
// every callee a summary hop collapsed. dpbudget uses this for
// accountant-coverage checks.
func (r *TaintResult) PathFuncs(n *node) []*types.Func {
	var fns []*types.Func
	seen := make(map[*types.Func]bool)
	add := func(f *types.Func) {
		if f != nil && !seen[f] {
			seen[f] = true
			fns = append(fns, f)
		}
	}
	for _, p := range r.pathTo(n) {
		add(p.fn)
		add(r.m.resultOwner[p])
		if e, ok := r.parent[p]; ok {
			add(e.via)
		}
	}
	return fns
}

// Witness renders the call-path witness into n:
//
//	share enters at var s (bgw.go:12) → param v of cli.render (run.go:30) → sink
//
// Hops that stay inside one function are collapsed; every call-boundary
// crossing is kept so the interprocedural route is visible.
func (r *TaintResult) Witness(n *node) string {
	path := r.pathTo(n)
	if len(path) == 0 {
		return ""
	}
	var b strings.Builder
	seedWhy := r.seed[path[0]]
	b.WriteString(seedWhy)
	if path[0].pos.IsValid() {
		b.WriteString(" (" + r.m.PosString(path[0].pos) + ")")
	}
	hops := 0
	for i := 1; i < len(path); i++ {
		e := r.parent[path[i]]
		// Keep call-boundary hops and the final node; collapse plain
		// intra-function assignments to keep witnesses readable.
		if e.via == nil && i != len(path)-1 {
			continue
		}
		hops++
		if hops > 8 {
			b.WriteString(" → …")
			break
		}
		b.WriteString(" → " + path[i].desc)
		if e.pos.IsValid() {
			b.WriteString(" (" + r.m.PosString(e.pos) + ")")
		}
	}
	return b.String()
}

// SeededBy returns the seed description for n's witness origin, or "".
func (r *TaintResult) SeededBy(n *node) string {
	path := r.pathTo(n)
	if len(path) == 0 {
		return ""
	}
	return r.seed[path[0]]
}
