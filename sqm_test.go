package sqm_test

import (
	"math"
	"testing"

	"sqm"
)

// The facade tests exercise the public API end to end the way a
// downstream user would; the heavy lifting is covered by the internal
// package suites.

func TestPublicPolynomialEvaluation(t *testing.T) {
	x := sqm.FromRows([][]float64{
		{0.5, 0.25},
		{0.25, 0.5},
		{0.1, 0.9},
	})
	f := sqm.MustMulti(sqm.MustPolynomial(2,
		sqm.Monomial{Coef: 1, Exps: []int{1, 1}},
	))
	est, trace, err := sqm.EvaluatePolynomialSum(f, x, sqm.Params{Gamma: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.5*0.25 + 0.25*0.5 + 0.1*0.9
	if math.Abs(est[0]-truth) > 1e-3 {
		t.Fatalf("estimate %v, want ≈ %v", est[0], truth)
	}
	if trace.Scale != 4096*4096*4096 {
		t.Fatalf("scale = %v", trace.Scale)
	}
}

func TestPublicMonomialWithBGW(t *testing.T) {
	x := sqm.FromRows([][]float64{{0.5, 0.5}, {0.25, 0.75}})
	m := sqm.Monomial{Coef: 2, Exps: []int{1, 1}}
	plain, _, err := sqm.EvaluateMonomialSum(m, x, sqm.Params{Gamma: 64, Mu: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	mpc, _, err := sqm.EvaluateMonomialSum(m, x, sqm.Params{Gamma: 64, Mu: 3, Seed: 2, Engine: sqm.EngineBGW})
	if err != nil {
		t.Fatal(err)
	}
	if plain != mpc {
		t.Fatalf("plain %v vs BGW %v", plain, mpc)
	}
}

func TestPublicCovarianceAndPCA(t *testing.T) {
	ds := sqm.KDDCupLike(500, 12, 3)
	cov, _, err := sqm.Covariance(ds.X, sqm.Params{Gamma: 1024, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Rows != 12 || !cov.IsSymmetric(0) {
		t.Fatal("covariance malformed")
	}
	r, err := sqm.PCASQM(ds.X, sqm.PCAConfig{K: 3, Eps: 4, Delta: 1e-5, C: 1, Gamma: 1024, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := sqm.PCAExact(ds.X, sqm.PCAConfig{K: 3, C: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Utility > exact.Utility+1e-9 {
		t.Fatal("private utility cannot exceed exact")
	}
}

func TestPublicLogReg(t *testing.T) {
	ds, err := sqm.ACSIncomeLike("TX", 600, 300, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sqm.TrainLogRegSQM(ds.X, ds.Labels, sqm.LRConfig{
		Eps: 8, Delta: 1e-5, Gamma: 4096, Epochs: 3, SampleRate: 0.05, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	acc := sqm.LogRegAccuracy(m, ds.TestX, ds.TestLabels)
	if acc < 0.5 {
		t.Fatalf("accuracy %v below coin flip", acc)
	}
}

func TestPublicAccounting(t *testing.T) {
	mu, err := sqm.CalibrateSkellamMu(1, 1e-5, 100, 100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eps, _ := sqm.SkellamEpsilon(100, 100, mu, 1, 1, 1e-5)
	if eps > 1+1e-9 {
		t.Fatalf("calibrated eps = %v", eps)
	}
	cEps, _ := sqm.SkellamClientEpsilon(100, 100, mu, 4, 1, 1e-5)
	if cEps <= eps {
		t.Fatal("client-observed eps must exceed server-observed")
	}
	sigma, err := sqm.AnalyticGaussianSigma(1, 1e-5, 1)
	if err != nil || sigma <= 0 {
		t.Fatalf("sigma = %v, err = %v", sigma, err)
	}
	if sqm.RDPToDP(8, 0.5, 1e-5) <= 0.5 {
		t.Fatal("conversion must add the delta term")
	}
	if tau := sqm.SkellamRDP(4, 10, 10, 1e6); tau <= 0 {
		t.Fatalf("tau = %v", tau)
	}
}

func TestPublicPerturbDataset(t *testing.T) {
	x := sqm.NewMatrix(100, 3)
	noisy := sqm.PerturbDataset(x, 1, 7)
	var sumsq float64
	for _, v := range noisy.Data {
		sumsq += v * v
	}
	if v := sumsq / 300; v < 0.7 || v > 1.3 {
		t.Fatalf("noise variance = %v", v)
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, err := sqm.RunExperiment("bogus", sqm.ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunExperimentStaticTables(t *testing.T) {
	tabs, err := sqm.RunExperiment("table1", sqm.ExperimentOptions{})
	if err != nil || len(tabs) != 1 {
		t.Fatalf("table1: %v, %v", tabs, err)
	}
	tabs, err = sqm.RunExperiment("table3", sqm.ExperimentOptions{})
	if err != nil || len(tabs) != 1 {
		t.Fatalf("table3: %v, %v", tabs, err)
	}
}
