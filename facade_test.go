package sqm_test

import (
	"bytes"
	"math"
	"testing"

	"sqm"
)

// These tests exercise the extension surfaces of the public facade —
// marginals, session layer, accountant, model persistence, activation
// approximation — the way a downstream user would.

func TestFacadeMarginals(t *testing.T) {
	x := sqm.FromRows([][]float64{
		{1, 1, 0},
		{1, 0, 1},
		{0, 1, 1},
		{1, 1, 1},
	})
	queries := sqm.AllPairMarginals(3)
	truth, err := sqm.TrueMarginals(x, queries)
	if err != nil {
		t.Fatal(err)
	}
	if truth[0] != 2 { // (0,1): rows 0 and 3
		t.Fatalf("truth = %v", truth)
	}
	r, err := sqm.AnswerMarginals(x, queries, 8, 1e-5, 64, sqm.Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Counts) != 3 || r.Mu <= 0 {
		t.Fatalf("result = %+v", r)
	}
	for _, c := range r.Counts {
		if c < 0 || c > 4 {
			t.Fatalf("count %v escapes range", c)
		}
	}
}

func TestFacadeSession(t *testing.T) {
	hooks := make([]sqm.SessionClientHooks, 2)
	p := sqm.SessionParams{Gamma: 8, NumClients: 2, OutDim: 1, Rounds: 1, Seed: 3}
	outcomes, err := sqm.RunVFLSession(p, hooks, func(round uint32) ([]int64, error) {
		return []int64{77}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.Err != nil || len(o.Results) != 1 || o.Results[0].Scaled[0] != 77 {
			t.Fatalf("outcome = %+v", o)
		}
	}
}

func TestFacadeAccountant(t *testing.T) {
	a := sqm.NewAccountant(64)
	mu, err := sqm.CalibrateSkellamMu(1, 1e-5, 50, 50, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.AddSkellam(50, 50, mu)
	eps1, _ := a.Epsilon(1e-5)
	if math.Abs(eps1-1) > 0.01 {
		t.Fatalf("single release eps = %v, want ~1", eps1)
	}
	a.AddSkellam(50, 50, mu)
	eps2, _ := a.Epsilon(1e-5)
	if eps2 <= eps1 || eps2 > 2.2 {
		t.Fatalf("two releases eps = %v", eps2)
	}
	if a.Remaining(3, 1e-5) <= 0 {
		t.Fatal("budget of 3 should not be exhausted")
	}
}

func TestFacadeModelPersistence(t *testing.T) {
	ds, err := sqm.ACSIncomeLike("FL", 300, 100, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := sqm.TrainLogRegNonPrivate(ds.X, ds.Labels, 5)
	var buf bytes.Buffer
	prov := sqm.ModelProvenance{Epsilon: 1, Delta: 1e-5, Gamma: 4096}
	if err := sqm.SaveLogRegModel(&buf, m, prov); err != nil {
		t.Fatal(err)
	}
	env, err := sqm.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if env.Provenance.Epsilon != 1 || len(env.Weights) != 10 {
		t.Fatalf("envelope = %+v", env)
	}
	restored := &sqm.LRModel{W: env.Weights}
	if got, want := sqm.LogRegAccuracy(restored, ds.TestX, ds.TestLabels),
		sqm.LogRegAccuracy(m, ds.TestX, ds.TestLabels); got != want {
		t.Fatalf("restored model predicts differently: %v vs %v", got, want)
	}
}

func TestFacadeSubspacePersistence(t *testing.T) {
	ds := sqm.KDDCupLike(200, 8, 6)
	r, err := sqm.PCAExact(ds.X, sqm.PCAConfig{K: 2, C: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sqm.SavePCASubspace(&buf, r, sqm.ModelProvenance{Note: "exact"}); err != nil {
		t.Fatal(err)
	}
	env, err := sqm.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	v, err := env.Subspace()
	if err != nil {
		t.Fatal(err)
	}
	if v.Rows != 8 || v.Cols != 2 {
		t.Fatalf("subspace shape %dx%d", v.Rows, v.Cols)
	}
}

func TestFacadeApproximation(t *testing.T) {
	p, err := sqm.SigmoidTaylor(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Coefs[1] != 0.25 {
		t.Fatalf("Taylor coefs = %v", p.Coefs)
	}
	cheb, err := sqm.ChebyshevApprox(sqm.SigmoidOf, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if e := cheb.SupError(sqm.SigmoidOf, 3, 512); e > 5e-3 {
		t.Fatalf("degree-5 Chebyshev sigmoid error %v", e)
	}
	if _, err := sqm.TanhTaylor(3); err != nil {
		t.Fatal(err)
	}
	if g := sqm.GELUOf(0); g != 0 {
		t.Fatalf("GELU(0) = %v", g)
	}
	up := cheb.ToUnivariatePoly()
	if up.NumVars != 1 {
		t.Fatal("conversion arity")
	}
}

func TestFacadeAudit(t *testing.T) {
	onX := func(trial int) float64 { return 0 }
	onY := func(trial int) float64 { return 10 }
	r, err := sqm.AuditEpsilon(onX, onY, sqm.AuditConfig{Trials: 1000, Bins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.EpsilonLower < 3 && !math.IsInf(r.EpsilonLower, 1) {
		t.Fatalf("blatant mechanism not flagged: %v", r.EpsilonLower)
	}
}

func TestFacadeRemainingWrappers(t *testing.T) {
	ds, err := sqm.ACSIncomeLike("FL", 400, 200, 10, 31)
	if err != nil {
		t.Fatal(err)
	}
	cfgLR := sqm.LRConfig{Eps: 8, Delta: 1e-5, Gamma: 256, Epochs: 1, SampleRate: 0.05, Seed: 32}
	if _, err := sqm.TrainLogRegDPSGD(ds.X, ds.Labels, cfgLR); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.TrainLogRegLocal(ds.X, ds.Labels, cfgLR); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.TrainLogRegSQMOrder3(ds.X, ds.Labels, cfgLR); err != nil {
		t.Fatal(err)
	}
	link, err := sqm.SigmoidTaylor(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.TrainLogRegGLM(link, ds.X, ds.Labels, cfgLR); err != nil {
		t.Fatal(err)
	}
	pcaCfg := sqm.PCAConfig{K: 2, Eps: 2, Delta: 1e-5, C: 1, Seed: 33}
	if _, err := sqm.PCACentral(ds.X, pcaCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.PCALocal(ds.X, pcaCfg); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.RidgeExact(ds.X, ds.Labels, sqm.RidgeConfig{C: 1, B: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.RidgeCentral(ds.X, ds.Labels, sqm.RidgeConfig{Eps: 2, Delta: 1e-5, C: 1, B: 1, Seed: 34}); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.RidgeLocal(ds.X, ds.Labels, sqm.RidgeConfig{Eps: 2, Delta: 1e-5, C: 1, B: 1, Seed: 35}); err != nil {
		t.Fatal(err)
	}
	gene := sqm.GeneLike(50, 20, 36)
	cs := sqm.CiteSeerLike(50, 30, 37)
	if gene.Rows() != 50 || cs.Cols() != 30 {
		t.Fatal("dataset wrappers")
	}
	stream, err := sqm.NewCovarianceStream(10, sqm.Params{Gamma: 64, Seed: 38})
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.Add(ds.X); err != nil {
		t.Fatal(err)
	}
	if _, _, err := stream.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := sqm.MinApproxDegree(sqm.GELUOf, 2, 1e-2, 15); err != nil {
		t.Fatal(err)
	}
	if tau := sqm.SkellamRDP(4, 10, 10, 1e5); tau <= 0 {
		t.Fatal("SkellamRDP wrapper")
	}
	if tabs, err := sqm.RunExperiment("ablations", sqm.ExperimentOptions{Runs: 1, Seed: 39}); err != nil || len(tabs) != 8 {
		t.Fatalf("ablations via facade: %d tables, %v", len(tabs), err)
	}
}

// A realistic multi-release workflow: the same vertically partitioned
// database first answers a covariance release (for PCA), then trains a
// logistic model; the accountant certifies the combined budget.
func TestFacadeComposedWorkflow(t *testing.T) {
	ds, err := sqm.ACSIncomeLike("NY", 800, 400, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	acct := sqm.NewAccountant(64)
	const (
		delta = 1e-5
		gamma = 1024.0
	)

	// Release 1: covariance at eps=1.
	d2 := gamma*gamma + float64(ds.Cols())
	mu1, err := sqm.CalibrateSkellamMu(1, delta, d2*d2, d2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sqm.Covariance(ds.X, sqm.Params{Gamma: gamma, Mu: mu1, Seed: 12}); err != nil {
		t.Fatal(err)
	}
	acct.AddSkellam(d2*d2, d2, mu1)

	// Release 2: LR training at eps=2.
	cfg := sqm.LRConfig{Eps: 2, Delta: delta, Gamma: gamma, Epochs: 2, SampleRate: 0.02, Seed: 13}
	if _, err := sqm.TrainLogRegSQM(ds.X, ds.Labels, cfg); err != nil {
		t.Fatal(err)
	}
	// Record the training run's curve: the trainer calibrated its own
	// mu internally; reproduce it for the ledger.
	// (Sensitivities from Lemma 7 at this gamma and d.)
	acct.AddRDP(func(alpha int) float64 {
		// Conservative stand-in: the target eps=2 release at alpha.
		return 2.0 * float64(alpha) / 64
	})

	total, _ := acct.Epsilon(delta)
	if total <= 1 {
		t.Fatalf("composed budget %v must exceed the first release alone", total)
	}
	if acct.Remaining(10, delta) <= 0 {
		t.Fatalf("a 10-eps budget should survive both releases (spent %v)", total)
	}
}

func TestFacadeRidgeAndRegressionDataset(t *testing.T) {
	ds := sqm.RegressionLike(800, 200, 8, 0.1, 9)
	m, err := sqm.RidgeSQM(ds.X, ds.Labels, sqm.RidgeConfig{
		Eps: 4, Delta: 1e-5, C: 1, B: 1, Gamma: 1024, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2 := sqm.RidgeR2(m, ds.TestX, ds.TestLabels); r2 < 0.2 {
		t.Fatalf("ridge R2 = %v", r2)
	}
	if mse := sqm.RidgeMSE(m, ds.TestX, ds.TestLabels); mse <= 0 {
		t.Fatalf("MSE = %v", mse)
	}
}
