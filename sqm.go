// Package sqm is the public API of this repository: a from-scratch Go
// implementation of the Skellam Quantization Mechanism (SQM) for
// learning on vertically partitioned data with distributed differential
// privacy (Bao et al., ICDE 2025).
//
// SQM evaluates polynomial aggregates F(X) = Σ_x f(x) over a database
// whose columns are split across mutually distrusting clients. Every
// client quantizes its column with unbiased stochastic rounding, samples
// a private share of integer-valued Skellam noise, and the clients
// jointly evaluate the quantized polynomial plus the aggregated noise
// inside the BGW secure-multiparty protocol. No party — client or
// server — ever observes the data or the exact aggregate, and the
// released output satisfies Rényi/(ε,δ) differential privacy with a
// privacy-utility trade-off matching the centralized Gaussian mechanism
// as the scaling parameter γ grows.
//
// The package re-exports the library's stable surface; implementations
// live under internal/ (one package per subsystem — see DESIGN.md).
//
// # Quick start
//
//	x := sqm.NewMatrix(rows, cols) // fill with records, ‖row‖₂ ≤ 1
//	f := sqm.MustMulti(sqm.MustPolynomial(cols,
//	        sqm.Monomial{Coef: 1, Exps: []int{1, 1, 0}}))
//	est, trace, err := sqm.EvaluatePolynomialSum(f, x, sqm.Params{
//	        Gamma: 4096, Mu: mu, Seed: 1,
//	})
//
// Calibrate Mu from a target (ε, δ) with CalibrateSkellamMu, or use the
// task-level helpers PCASQM / TrainLogRegSQM which calibrate internally
// from the paper's closed-form sensitivities.
package sqm

import (
	"io"

	"sqm/internal/approx"
	"sqm/internal/audit"
	"sqm/internal/bench"
	"sqm/internal/core"
	"sqm/internal/dataset"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/linreg"
	"sqm/internal/logreg"
	"sqm/internal/marginal"
	"sqm/internal/modelio"
	"sqm/internal/obs"
	"sqm/internal/pca"
	"sqm/internal/poly"
	"sqm/internal/protocol"
	"sqm/internal/vfl"
)

// Matrix is a dense row-major float64 matrix (records in rows).
type Matrix = linalg.Matrix

// NewMatrix allocates a zero rows × cols matrix.
func NewMatrix(rows, cols int) *Matrix { return linalg.NewMatrix(rows, cols) }

// FromRows builds a matrix from row slices.
func FromRows(rows [][]float64) *Matrix { return linalg.FromRows(rows) }

// Monomial is one term a·Π_j x[j]^Exps[j] of a polynomial.
type Monomial = poly.Monomial

// Polynomial is one output dimension: a sum of monomials.
type Polynomial = poly.Polynomial

// Multi is a d-dimensional polynomial function f = (f_1, ..., f_d).
type Multi = poly.Multi

// NewPolynomial validates and constructs a polynomial.
func NewPolynomial(numVars int, ms ...Monomial) (*Polynomial, error) {
	return poly.NewPolynomial(numVars, ms...)
}

// MustPolynomial is NewPolynomial but panics on error.
func MustPolynomial(numVars int, ms ...Monomial) *Polynomial {
	return poly.MustPolynomial(numVars, ms...)
}

// NewMulti validates and bundles polynomial dimensions.
func NewMulti(dims ...*Polynomial) (*Multi, error) { return poly.NewMulti(dims...) }

// MustMulti is NewMulti but panics on error.
func MustMulti(dims ...*Polynomial) *Multi { return poly.MustMulti(dims...) }

// Params configures one SQM invocation (Algorithms 1 and 3).
type Params = core.Params

// Trace carries per-invocation diagnostics and protocol cost counters.
type Trace = core.Trace

// EngineKind selects the evaluation backend.
type EngineKind = core.EngineKind

// Evaluation backends: EnginePlain computes the identical integers
// without secret sharing; EngineBGW runs the monolithic MPC engine;
// EngineActorBGW runs one goroutine per party exchanging shares over an
// in-memory message mesh; EngineActorBGWNet does the same over
// localhost TCP sockets. All four open bit-identical results for the
// same Params.
const (
	EnginePlain       = core.EnginePlain
	EngineBGW         = core.EngineBGW
	EngineActorBGW    = core.EngineActorBGW
	EngineActorBGWNet = core.EngineActorBGWNet
)

// ParseEngineKind maps a backend name ("plain", "bgw", "actor",
// "actor-net") to its EngineKind.
func ParseEngineKind(s string) (EngineKind, error) { return core.ParseEngineKind(s) }

// ErrFieldOverflow reports that an aggregate cannot fit the MPC field.
var ErrFieldOverflow = core.ErrFieldOverflow

// EvaluatePolynomialSum runs Algorithm 3 on a multi-dimensional
// polynomial over the vertically partitioned rows of x.
func EvaluatePolynomialSum(f *Multi, x *Matrix, p Params) ([]float64, *Trace, error) {
	return core.EvaluatePolynomialSum(f, x, p)
}

// EvaluateMonomialSum runs Algorithm 1 on a single monomial.
func EvaluateMonomialSum(m Monomial, x *Matrix, p Params) (float64, *Trace, error) {
	return core.EvaluateMonomialSum(m, x, p)
}

// Covariance runs the specialized PCA protocol of §V-A, returning the
// noisy covariance estimate XᵀX/1 (already down-scaled by γ²).
func Covariance(x *Matrix, p Params) (*Matrix, *Trace, error) {
	return core.Covariance(x, p)
}

// CovarianceStream accumulates the covariance protocol over record
// batches for databases too large to hold in memory.
type CovarianceStream = core.CovarianceStream

// NewCovarianceStream prepares a streaming accumulator over n
// attributes (plain engine only).
func NewCovarianceStream(n int, p Params) (*CovarianceStream, error) {
	return core.NewCovarianceStream(n, p)
}

// LRProtocol is the stateful logistic-regression protocol of §V-B.
type LRProtocol = core.LRProtocol

// NewLRProtocol quantizes and (for EngineBGW) secret-shares the
// training data once; call GradientSum per SGD round.
func NewLRProtocol(features *Matrix, labels []float64, p Params) (*LRProtocol, error) {
	return core.NewLRProtocol(features, labels, p)
}

// ---- Differential-privacy accounting ----

// SkellamRDP is Lemma 1's RDP bound of the Skellam mechanism.
func SkellamRDP(alpha int, delta1, delta2, mu float64) float64 {
	return dp.SkellamRDP(alpha, delta1, delta2, mu)
}

// RDPToDP converts (α, τ)-RDP to (ε, δ)-DP (Lemma 9).
func RDPToDP(alpha int, tau, delta float64) float64 { return dp.RDPToDP(alpha, tau, delta) }

// SkellamEpsilon is the server-observed ε of R (optionally subsampled)
// Skellam rounds.
func SkellamEpsilon(delta1, delta2, mu, q float64, rounds int, delta float64) (float64, int) {
	return dp.SkellamEpsilon(delta1, delta2, mu, q, rounds, delta, dp.DefaultMaxAlpha)
}

// SkellamClientEpsilon is the client-observed counterpart.
func SkellamClientEpsilon(delta1, delta2, mu float64, numClients, rounds int, delta float64) (float64, int) {
	return dp.SkellamClientEpsilon(delta1, delta2, mu, numClients, rounds, delta, dp.DefaultMaxAlpha)
}

// CalibrateSkellamMu finds the minimal aggregate Skellam parameter
// meeting a target server-observed (ε, δ).
func CalibrateSkellamMu(targetEps, delta, delta1, delta2, q float64, rounds int) (float64, error) {
	return dp.CalibrateSkellamMu(targetEps, delta, delta1, delta2, q, rounds)
}

// Accountant tracks the cumulative privacy cost of heterogeneous
// releases against one database and converts to (ε, δ) on demand.
type Accountant = dp.Accountant

// NewAccountant tracks RDP orders 2..maxAlpha (0 for the default).
func NewAccountant(maxAlpha int) *Accountant { return dp.NewAccountant(maxAlpha) }

// ---- Observability ----

// Recorder is the telemetry sink threaded through the engines, meshes
// and sessions: structured events plus a metrics registry of counters,
// gauges and histograms. Attach one via Params.Recorder or
// WithSessionRecorder; a nil Recorder disables telemetry at zero cost.
type Recorder = obs.Recorder

// RecorderMetrics is the registry a Recorder carries.
type RecorderMetrics = obs.Metrics

// Log levels accepted by NewLogRecorder.
const (
	LevelDebug = obs.LevelDebug
	LevelInfo  = obs.LevelInfo
	LevelWarn  = obs.LevelWarn
)

// NewLogRecorder builds a slog-backed recorder writing structured
// events to w ("json" or "text" format) at or above min, with a fresh
// metrics registry attached.
func NewLogRecorder(w io.Writer, format string, min obs.Level) *obs.LogRecorder {
	return obs.NewLog(w, format, min)
}

// NopRecorder is the disabled recorder: events vanish and no metrics
// registry is attached.
func NopRecorder() Recorder { return obs.Nop() }

// TraceID identifies one distributed trace (a whole session across
// every party).
type TraceID = obs.TraceID

// TraceContext is the per-session tracing root: one Lamport-clocked
// event stream per party plus the coordinator, each backed by a bounded
// flight recorder that dumps JSONL on session end (see
// TraceContext.DumpAll). Attach via Params.Trace or WithSessionTrace;
// merge the dumps with cmd/sqmtrace.
type TraceContext = obs.TraceContext

// NewTraceContext builds a tracing root for the given party count
// (0 for a coordinator-only trace).
func NewTraceContext(id TraceID, parties int) *TraceContext {
	return obs.NewTraceContext(id, parties)
}

// DeriveTraceID deterministically mixes the inputs (seed, party count,
// ...) into a trace id, keeping traced runs reproducible.
func DeriveTraceID(parts ...uint64) TraceID { return obs.DeriveTraceID(parts...) }

// GroupPrivacy converts a record-level (ε, δ) guarantee to a k-record
// (user-level) one via the standard group-privacy bound — the baseline
// for the paper's user-level future-work direction.
func GroupPrivacy(eps, delta float64, k int) (float64, float64) {
	return dp.GroupPrivacy(eps, delta, k)
}

// AnalyticGaussianSigma is the Balle–Wang calibration (Lemma 8).
func AnalyticGaussianSigma(eps, delta, sensitivity float64) (float64, error) {
	return dp.AnalyticGaussianSigma(eps, delta, sensitivity)
}

// ---- Applications: PCA (§V-A) ----

// PCAConfig parameterizes the PCA mechanisms.
type PCAConfig = pca.Config

// PCAResult is a fitted subspace with its utility ‖XV̂‖²_F.
type PCAResult = pca.Result

// PCAExact is the non-private reference.
func PCAExact(x *Matrix, cfg PCAConfig) (*PCAResult, error) { return pca.Exact(x, cfg) }

// PCASQM is the paper's distributed-DP mechanism.
func PCASQM(x *Matrix, cfg PCAConfig) (*PCAResult, error) { return pca.SQM(x, cfg) }

// PCACentral is the Analyze-Gauss centralized baseline.
func PCACentral(x *Matrix, cfg PCAConfig) (*PCAResult, error) { return pca.Central(x, cfg) }

// PCALocal is the local-DP baseline (Algorithm 4).
func PCALocal(x *Matrix, cfg PCAConfig) (*PCAResult, error) { return pca.Local(x, cfg) }

// ---- Applications: logistic regression (§V-B) ----

// LRConfig parameterizes the private trainers.
type LRConfig = logreg.Config

// LRModel is a fitted model with ‖w‖₂ ≤ 1.
type LRModel = logreg.Model

// TrainLogRegSQM trains under distributed DP in the VFL setting.
func TrainLogRegSQM(x *Matrix, y []float64, cfg LRConfig) (*LRModel, error) {
	return logreg.TrainSQM(x, y, cfg)
}

// TrainLogRegSQMOrder3 trains with the order-3 Taylor sigmoid (the
// §V-C extension); γ must stay moderate (≲ 2⁹) for the degree-4
// amplification to fit the MPC field.
func TrainLogRegSQMOrder3(x *Matrix, y []float64, cfg LRConfig) (*LRModel, error) {
	return logreg.TrainSQMOrder3(x, y, cfg)
}

// TrainLogRegGLM trains with an arbitrary polynomial link function (a
// Taylor or Chebyshev fit) through the fully generic Algorithm 3 path.
// More flexible but noisier than the specialized trainers: the
// conservative per-monomial sensitivity costs a constant factor.
func TrainLogRegGLM(link *ApproxPoly1, x *Matrix, y []float64, cfg LRConfig) (*LRModel, error) {
	return logreg.TrainGLM(link, x, y, cfg)
}

// TrainLogRegDPSGD is the centralized DPSGD baseline.
func TrainLogRegDPSGD(x *Matrix, y []float64, cfg LRConfig) (*LRModel, error) {
	return logreg.TrainDPSGD(x, y, cfg)
}

// TrainLogRegLocal is the local-DP baseline.
func TrainLogRegLocal(x *Matrix, y []float64, cfg LRConfig) (*LRModel, error) {
	return logreg.TrainLocal(x, y, cfg)
}

// TrainLogRegNonPrivate is the exact reference model.
func TrainLogRegNonPrivate(x *Matrix, y []float64, seed uint64) *LRModel {
	return logreg.TrainNonPrivate(x, y, seed)
}

// LogRegAccuracy is the 0.5-threshold test accuracy.
func LogRegAccuracy(m *LRModel, x *Matrix, y []float64) float64 {
	return logreg.Accuracy(m, x, y)
}

// ---- Applications: k-way marginals (extension) ----

// MarginalQuery is one conjunction count over binary attributes.
type MarginalQuery = marginal.Query

// MarginalResult is a privately answered marginal workload.
type MarginalResult = marginal.Result

// AnswerMarginals releases a workload of k-way conjunction counts over
// vertically partitioned binary data under one (ε, δ) budget.
func AnswerMarginals(x *Matrix, queries []MarginalQuery, eps, delta, gamma float64, p Params) (*MarginalResult, error) {
	return marginal.Answer(x, queries, eps, delta, gamma, p)
}

// TrueMarginals computes the exact workload answers for evaluation.
func TrueMarginals(x *Matrix, queries []MarginalQuery) ([]float64, error) {
	return marginal.TrueCounts(x, queries)
}

// AllPairMarginals enumerates every 2-way marginal over n attributes.
func AllPairMarginals(n int) []MarginalQuery { return marginal.AllPairs(n) }

// ---- Polynomial approximation of activations ----

// ApproxPoly1 is a univariate polynomial approximation of an activation
// function, convertible to an SQM-evaluable polynomial.
type ApproxPoly1 = approx.Poly1

// SigmoidOf, TanhOf and GELUOf are the activation functions the
// approximation helpers target.
func SigmoidOf(u float64) float64 { return approx.Sigmoid(u) }

// TanhOf is the hyperbolic tangent.
func TanhOf(u float64) float64 { return approx.Tanh(u) }

// GELUOf is the Gaussian error linear unit.
func GELUOf(u float64) float64 { return approx.GELU(u) }

// SigmoidTaylor returns the order-H Taylor sigmoid (the paper's H=1 is
// ½ + u/4).
func SigmoidTaylor(order int) (*ApproxPoly1, error) { return approx.SigmoidTaylor(order) }

// TanhTaylor returns the order-H Taylor tanh.
func TanhTaylor(order int) (*ApproxPoly1, error) { return approx.TanhTaylor(order) }

// ChebyshevApprox fits a near-minimax degree-n polynomial to f on
// [−r, r] — the approximation style used for GELU/Tanh in private
// transformer inference (§III's motivation).
func ChebyshevApprox(f func(float64) float64, r float64, degree int) (*ApproxPoly1, error) {
	return approx.Chebyshev(approx.Func(f), r, degree)
}

// MinApproxDegree finds the smallest Chebyshev degree meeting a sup-norm
// tolerance on [−r, r], so callers can budget the SQM degree before
// paying for it.
func MinApproxDegree(f func(float64) float64, r, tol float64, maxDegree int) (*ApproxPoly1, error) {
	return approx.MinDegreeFor(approx.Func(f), r, tol, maxDegree)
}

// ---- Applications: ridge regression (extension) ----

// RidgeConfig parameterizes the private ridge-regression fits.
type RidgeConfig = linreg.Config

// RidgeModel is a fitted linear predictor.
type RidgeModel = linreg.Model

// RidgeExact is the non-private ridge fit.
func RidgeExact(x *Matrix, y []float64, cfg RidgeConfig) (*RidgeModel, error) {
	return linreg.Exact(x, y, cfg)
}

// RidgeSQM fits ridge regression under distributed DP via the
// covariance protocol on the augmented matrix [X | y] — an exactly
// polynomial task, no approximation needed.
func RidgeSQM(x *Matrix, y []float64, cfg RidgeConfig) (*RidgeModel, error) {
	return linreg.SQM(x, y, cfg)
}

// RidgeCentral is the centralized sufficient-statistics baseline.
func RidgeCentral(x *Matrix, y []float64, cfg RidgeConfig) (*RidgeModel, error) {
	return linreg.Central(x, y, cfg)
}

// RidgeLocal is the local-DP baseline.
func RidgeLocal(x *Matrix, y []float64, cfg RidgeConfig) (*RidgeModel, error) {
	return linreg.Local(x, y, cfg)
}

// RidgeMSE is the mean squared error of a ridge model.
func RidgeMSE(m *RidgeModel, x *Matrix, y []float64) float64 { return linreg.MSE(m, x, y) }

// RidgeR2 is the coefficient of determination of a ridge model.
func RidgeR2(m *RidgeModel, x *Matrix, y []float64) float64 { return linreg.R2(m, x, y) }

// RegressionLike generates the synthetic regression task used by the
// ridge extension.
func RegressionLike(mTrain, mTest, d int, noiseStd float64, seed uint64) *Dataset {
	return dataset.RegressionLike(mTrain, mTest, d, noiseStd, seed)
}

// ---- Baseline plumbing and datasets ----

// PerturbDataset runs the local-DP baseline's Algorithm 4.
func PerturbDataset(x *Matrix, sigma float64, seed uint64) *Matrix {
	return vfl.PerturbDataset(x, sigma, seed)
}

// Dataset is a bundled synthetic learning task (see DESIGN.md for how
// each generator stands in for the paper's real corpus).
type Dataset = dataset.Dataset

// KDDCupLike generates the KDDCUP-like PCA dataset.
func KDDCupLike(m, n int, seed uint64) *Dataset { return dataset.KDDCupLike(m, n, seed) }

// CiteSeerLike generates the CiteSeer-like sparse PCA dataset.
func CiteSeerLike(m, n int, seed uint64) *Dataset { return dataset.CiteSeerLike(m, n, seed) }

// GeneLike generates the Gene-like low-rank PCA dataset.
func GeneLike(m, n int, seed uint64) *Dataset { return dataset.GeneLike(m, n, seed) }

// ACSIncomeLike generates one state's ACSIncome-like LR task.
func ACSIncomeLike(state string, mTrain, mTest, d int, seed uint64) (*Dataset, error) {
	return dataset.ACSIncomeLike(state, mTrain, mTest, d, seed)
}

// ---- Empirical auditing ----

// AuditSampler draws one output of a mechanism on a fixed input.
type AuditSampler = audit.Sampler

// AuditConfig tunes the empirical privacy estimator.
type AuditConfig = audit.Config

// AuditResult is one audit outcome.
type AuditResult = audit.Result

// AuditEpsilon empirically lower-bounds the privacy loss between a
// mechanism run on two neighboring inputs; estimates far above the
// claimed ε indicate an implementation leak (forgotten noise,
// sensitivity underestimation).
func AuditEpsilon(onX, onNeighbor AuditSampler, cfg AuditConfig) (*AuditResult, error) {
	return audit.EstimateEpsilon(onX, onNeighbor, cfg)
}

// ---- Session layer ----

// SessionParams is the negotiated configuration of one VFL session.
type SessionParams = protocol.Params

// SessionClientHooks is the work one client performs at each lifecycle
// step (quantize + commit noise on params, then its share of each
// round).
type SessionClientHooks = protocol.ClientHooks

// SessionOutcome is one client's view after a completed session.
type SessionOutcome = protocol.SessionOutcome

// SessionResult is one round's broadcast result.
type SessionResult = protocol.Result

// SessionOption configures RunVFLSession / RunVFLSessionTCP.
type SessionOption = protocol.SessionOption

// WithSessionRecorder attaches a telemetry recorder to the session run:
// the coordinator emits structured lifecycle events (session.start,
// session.round, session.done, ...) and times every phase into the
// recorder's metrics registry.
func WithSessionRecorder(rec Recorder) SessionOption { return protocol.WithRecorder(rec) }

// WithSessionTrace attaches a distributed-tracing context: every
// session event gains (trace, party, lclock) stamps and is captured by
// the coordinator's flight recorder. Share the same context with the
// per-round evaluation (Params.Trace) to stitch mesh traffic into the
// same timeline.
func WithSessionTrace(tc *TraceContext) SessionOption { return protocol.WithTrace(tc) }

// WithSessionTraceDir makes the session dump every party's flight
// recorder as JSONL into dir on the way out — completed or aborted.
// When no WithSessionTrace context was given, a coordinator-only one is
// derived from the session params. Merge the dumps with cmd/sqmtrace.
func WithSessionTraceDir(dir string) SessionOption { return protocol.WithTraceDir(dir) }

// RunVFLSession executes the full SQM session lifecycle — hello,
// parameter commitment, evaluation rounds, result broadcast — over the
// versioned wire protocol (in-memory transport; a deployment would use
// TLS connections). evaluate runs on the coordinator once per round
// after every client finished its protocol work.
func RunVFLSession(p SessionParams, hooks []SessionClientHooks, evaluate func(round uint32) ([]int64, error), opts ...SessionOption) ([]SessionOutcome, error) {
	return protocol.RunSession(p, hooks, evaluate, opts...)
}

// RunVFLSessionTCP is RunVFLSession with every client connected to the
// coordinator over a real localhost TCP socket, so the session frames
// cross the loopback stack. Pair it with an EngineActorBGWNet evaluate
// callback to run the whole pipeline over genuine network traffic.
func RunVFLSessionTCP(p SessionParams, hooks []SessionClientHooks, evaluate func(round uint32) ([]int64, error), opts ...SessionOption) ([]SessionOutcome, error) {
	return protocol.RunSessionTCP(p, hooks, evaluate, opts...)
}

// ---- Model persistence ----

// ModelProvenance records the privacy budget a stored artifact
// consumed.
type ModelProvenance = modelio.Provenance

// ModelEnvelope is the versioned on-disk artifact form.
type ModelEnvelope = modelio.Envelope

// SaveLogRegModel persists a trained logistic model with its privacy
// provenance.
func SaveLogRegModel(w io.Writer, m *LRModel, prov ModelProvenance) error {
	//lint:ignore dpbudget m.W is a post-release artifact: its budget was recorded by the trainer and is carried here as provenance; the field-level taint is the engine's documented cross-instance smear
	return modelio.SaveWeights(w, modelio.KindLogReg, m.W, prov)
}

// SaveRidgeModel persists a ridge model.
func SaveRidgeModel(w io.Writer, m *RidgeModel, prov ModelProvenance) error {
	return modelio.SaveWeights(w, modelio.KindRidge, m.W, prov)
}

// SavePCASubspace persists a fitted principal subspace.
func SavePCASubspace(w io.Writer, r *PCAResult, prov ModelProvenance) error {
	return modelio.SaveSubspace(w, r.Subspace, prov)
}

// LoadModel parses any persisted artifact.
func LoadModel(r io.Reader) (*ModelEnvelope, error) { return modelio.Load(r) }

// ---- Experiment harness ----

// ExperimentOptions tunes the paper-experiment runners.
type ExperimentOptions = bench.Options

// ExperimentTable is a printable experiment result.
type ExperimentTable = bench.Table

// RunExperiment regenerates a paper table or figure by id ("fig2".."fig5",
// "table1".."table5", or "all").
func RunExperiment(id string, o ExperimentOptions) ([]*ExperimentTable, error) {
	return bench.ByID(id, o)
}
