// Private two-way marginals over vertically partitioned binary data —
// the classic database task expressed in SQM's polynomial class: with
// one-hot attributes x_a, x_b ∈ {0, 1} held by different organizations,
// the contingency count |{records: x_a = 1 ∧ x_b = 1}| is the degree-2
// aggregate Σ x_a·x_b, i.e. one entry of the covariance protocol's
// output. A single SQM invocation therefore releases ALL pairwise
// marginals at once under one (ε, δ) budget.
//
// Run with: go run ./examples/marginals
package main

import (
	"fmt"
	"log"
	"math"

	"sqm"
)

const (
	records = 20000
	// Two organizations: org A holds attributes 0-2, org B holds 3-5.
	attrs = 6
)

var names = [attrs]string{"premium", "mobile", "urban", "card", "loan", "late-pay"}

func main() {
	// Correlated binary attributes: a latent "affluence" trait drives
	// premium/card/loan, a latent "risk" trait drives late-pay.
	x := sqm.NewMatrix(records, attrs)
	seedCoin := func(i, salt int) bool { return (i*2654435761+salt*40503)%1000 < 500 }
	for i := 0; i < records; i++ {
		row := x.Row(i)
		affluent := seedCoin(i, 1)
		risky := seedCoin(i, 2)
		set := func(j int, base bool, p int) {
			if base && (i*31+j*17)%100 < p {
				row[j] = 1
			} else if !base && (i*31+j*17)%100 < 10 {
				row[j] = 1
			}
		}
		set(0, affluent, 80) // premium
		set(1, true, 60)     // mobile (independent)
		set(2, affluent, 55) // urban
		set(3, affluent, 85) // card
		set(4, risky, 50)    // loan
		set(5, risky, 70)    // late-pay
	}

	// Rows are binary with up to `attrs` ones → ‖row‖₂ ≤ √attrs.
	c := math.Sqrt(attrs)
	const (
		eps   = 1.0
		delta = 1e-5
		gamma = 1024.0
	)
	// Lemma 5's covariance sensitivities at norm bound c.
	delta2 := gamma*gamma*c*c + attrs
	delta1 := math.Min(delta2*delta2, float64(attrs)*delta2)
	mu, err := sqm.CalibrateSkellamMu(eps, delta, delta1, delta2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	counts, _, err := sqm.Covariance(x, sqm.Params{Gamma: gamma, Mu: mu, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	truth := x.Gram()
	fmt.Printf("pairwise marginals over %d records at (ε=%g, δ=%g), one SQM release:\n\n", records, eps, delta)
	fmt.Printf("%-22s  %8s  %10s  %7s\n", "pair", "true", "private", "error")
	for a := 0; a < attrs; a++ {
		for b := a + 1; b < attrs; b++ {
			if a < 3 == (b < 3) {
				continue // show only the cross-organization pairs
			}
			pair := names[a] + " ∧ " + names[b]
			fmt.Printf("%-22s  %8.0f  %10.1f  %7.1f\n",
				pair, truth.At(a, b), counts.At(a, b), counts.At(a, b)-truth.At(a, b))
		}
	}
	fmt.Println("\nno organization revealed a single record; the noise per cell is calibrated")
	fmt.Println("to hide any individual across ALL pairwise counts simultaneously.")
}
