// Quickstart: three clients each own one column of a small database and
// want the server to learn Σ x₁·x₂·x₃ — without revealing their columns
// and with differential privacy on the released sum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sqm"

	"sqm/internal/mathx"
)

func main() {
	// The vertically partitioned database: each column belongs to a
	// different client; each row is one user, ‖row‖₂ ≤ 1. (A few
	// hundred records so the private signal stands above the DP noise,
	// whose scale is calibrated to a single record's influence.)
	x := sqm.NewMatrix(400, 3)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		row[0] = 0.2 + 0.3*float64(i%7)/7
		row[1] = 0.5 - 0.25*float64(i%5)/5
		row[2] = 0.3 + 0.2*float64(i%3)/3
	}

	// The aggregate of interest: F(X) = Σ_x x[1]·x[2]·x[3], a degree-3
	// monomial (Algorithm 1 of the paper).
	target := sqm.Monomial{Coef: 1, Exps: []int{1, 1, 1}}
	truth := 0.0
	for i := 0; i < x.Rows; i++ {
		r := x.Row(i)
		truth += r[0] * r[1] * r[2]
	}

	// Calibrate the aggregate Skellam parameter μ for (ε=1, δ=1e-5)
	// server-observed DP. The quantized sensitivity of the degree-3
	// monomial with γ = 4096 is ≈ γ³·max|f| = γ³ (unit norm rows).
	const gamma = 4096.0
	delta2 := gamma * gamma * gamma // max |f| ≤ 1 on the unit ball
	mu, err := sqm.CalibrateSkellamMu(1.0, 1e-5, delta2, delta2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The accountant is the privacy ledger: every protocol invocation
	// that carries it records its release, and ε(δ) below is derived
	// from what was actually spent rather than from the calibration.
	acct := sqm.NewAccountant(0)

	est, trace, err := sqm.EvaluateMonomialSum(target, x, sqm.Params{
		Gamma: gamma,
		Mu:    mu,
		Seed:  7,
		Acct:  acct,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true aggregate      : %.6f\n", truth)
	fmt.Printf("SQM estimate (ε=1)  : %.6f\n", est)
	fmt.Printf("scaled integer output: %d (down-scaled by γ^λ = %.0f)\n",
		trace.Scaled[0], trace.Scale)

	// The same protocol through the real BGW engine: bit-identical
	// output, now with metered communication.
	estMPC, traceMPC, err := sqm.EvaluateMonomialSum(target, x, sqm.Params{
		Gamma:  gamma,
		Mu:     mu,
		Seed:   7,
		Engine: sqm.EngineBGW,
		Acct:   acct,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BGW estimate        : %.6f (identical: %v)\n", estMPC, mathx.EqualWithin(estMPC, est, 0))
	fmt.Printf("BGW cost            : %d rounds, %d messages, simulated time %v\n",
		traceMPC.Stats.Rounds, traceMPC.Stats.Messages, traceMPC.TotalTime().Round(1e6))

	// Two releases of the same statistic compose: the ledger's ε is
	// roughly double the per-release budget.
	eps, alpha := acct.Epsilon(1e-5)
	fmt.Printf("privacy ledger      : ε(δ=1e-5) = %.3f @ α=%d over %d releases\n",
		eps, alpha, acct.Releases())
}
