// Differentially private PCA on vertically partitioned data: the
// scenario of §V-A. A KDDCUP-like database is split column-wise over
// its clients; the server learns the top-k principal components under
// distributed DP and we compare the captured variance against the
// centralized Analyze-Gauss baseline, the local-DP baseline, and the
// exact subspace.
//
// Run with: go run ./examples/pca
package main

import (
	"fmt"
	"log"

	"sqm"
)

func main() {
	// Synthetic stand-in for KDDCUP (see DESIGN.md, substitution 1).
	ds := sqm.KDDCupLike(8000, 40, 1)
	fmt.Printf("dataset: %s, m=%d records, n=%d attributes (one client per column)\n",
		ds.Name, ds.Rows(), ds.Cols())

	const (
		k     = 5
		delta = 1e-5
	)
	base := sqm.PCAConfig{K: k, Delta: delta, C: ds.C, Seed: 11}

	exact, err := sqm.PCAExact(ds.X, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact top-%d utility ||XV||_F^2 = %.3f\n\n", k, exact.Utility)
	fmt.Printf("%6s  %10s  %10s  %14s  %14s\n", "eps", "central", "local", "SQM(g=2^6)", "SQM(g=2^12)")

	for _, eps := range []float64{0.5, 1, 2, 4} {
		cfg := base
		cfg.Eps = eps
		central, err := sqm.PCACentral(ds.X, cfg)
		if err != nil {
			log.Fatal(err)
		}
		local, err := sqm.PCALocal(ds.X, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Gamma = 1 << 6
		coarse, err := sqm.PCASQM(ds.X, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Gamma = 1 << 12
		fine, err := sqm.PCASQM(ds.X, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f  %10.3f  %10.3f  %14.3f  %14.3f\n",
			eps, central.Utility, local.Utility, coarse.Utility, fine.Utility)
	}
	fmt.Println("\nfiner quantization (larger gamma) closes the gap to the centralized baseline,")
	fmt.Println("while the local-DP baseline pays the full cost of perturbing raw data.")
}
