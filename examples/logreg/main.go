// Differentially private logistic regression in the VFL setting: the
// scenario of §V-B. An ACSIncome-like task (predicting a binary income
// indicator) is split column-wise; the model is trained with SQM's
// distributed Skellam noise and compared against centralized DPSGD, the
// local-DP baseline, and the non-private reference.
//
// Run with: go run ./examples/logreg
package main

import (
	"fmt"
	"log"

	"sqm"
)

func main() {
	ds, err := sqm.ACSIncomeLike("CA", 2000, 1000, 60, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, m=%d train / %d test, d=%d features + 1 label column\n",
		ds.Name, ds.Rows(), ds.TestX.Rows, ds.Cols())

	nonpriv := sqm.TrainLogRegNonPrivate(ds.X, ds.Labels, 5)
	fmt.Printf("\nnon-private test accuracy: %.3f\n\n", sqm.LogRegAccuracy(nonpriv, ds.TestX, ds.TestLabels))
	fmt.Printf("%6s  %8s  %8s  %14s\n", "eps", "DPSGD", "Local", "SQM(g=2^13)")

	for _, eps := range []float64{1, 2, 4, 8} {
		cfg := sqm.LRConfig{
			Eps: eps, Delta: 1e-5,
			Epochs:     5,
			SampleRate: 0.01,
			Seed:       7,
		}
		dpsgd, err := sqm.TrainLogRegDPSGD(ds.X, ds.Labels, cfg)
		if err != nil {
			log.Fatal(err)
		}
		local, err := sqm.TrainLogRegLocal(ds.X, ds.Labels, cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Gamma = 1 << 13
		vflModel, err := sqm.TrainLogRegSQM(ds.X, ds.Labels, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f  %8.3f  %8.3f  %14.3f\n", eps,
			sqm.LogRegAccuracy(dpsgd, ds.TestX, ds.TestLabels),
			sqm.LogRegAccuracy(local, ds.TestX, ds.TestLabels),
			sqm.LogRegAccuracy(vflModel, ds.TestX, ds.TestLabels))
	}
	fmt.Println("\nSQM tracks the centralized DPSGD baseline without any trusted party;")
	fmt.Println("the local-DP baseline trains on noise-drowned features and labels.")
}
