// A complete VFL session over the wire protocol: three clients and a
// coordinator exchange versioned binary frames through the session
// layer — hello, parameter commitment (each client quantizes its column
// and samples its Skellam shares *before* any evaluation round, as the
// DP analysis requires), then two evaluation rounds whose opened
// results are broadcast back to every client.
//
// Everything crosses real sockets: the session frames travel over
// localhost TCP connections (RunVFLSessionTCP), and each round's MPC
// runs the party-actor BGW engine whose share messages travel over
// their own TCP mesh (EngineActorBGWNet).
//
// The run is fully instrumented: a telemetry recorder captures the
// session lifecycle events, the BGW round spans and the mesh traffic
// counters on stderr, a privacy-budget ledger reports the running ε(δ)
// after each noise release, and the final metrics registry is dumped at
// the end.
//
// Run with: go run ./examples/vflsession
//
// Pass -trace-dir to additionally record a distributed trace: the
// session coordinator and all three mesh parties stamp their events
// with a shared trace id and Lamport clocks, and dump per-party JSONL
// flight-recorder files into the directory on exit. Merge them into
// one causally ordered timeline with:
//
//	go run ./cmd/sqmtrace <trace-dir>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sqm"
)

func main() {
	traceDir := flag.String("trace-dir", "", "dump per-party trace JSONL into this directory")
	flag.Parse()
	// The shared database: 200 records, one column per client.
	x := sqm.NewMatrix(200, 3)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		row[0] = 0.2 + 0.3*float64(i%5)/5
		row[1] = 0.4 - 0.2*float64(i%7)/7
		row[2] = 0.1 + 0.25*float64(i%3)/3
	}
	// The aggregate of interest: F(X) = Σ x1·x2 + 0.5·x3².
	f := sqm.MustMulti(sqm.MustPolynomial(3,
		sqm.Monomial{Coef: 1, Exps: []int{1, 1, 0}},
		sqm.Monomial{Coef: 0.5, Exps: []int{0, 0, 2}},
	))
	truth := 0.0
	for i := 0; i < x.Rows; i++ {
		r := x.Row(i)
		truth += r[0]*r[1] + 0.5*r[2]*r[2]
	}

	const gamma = 2048.0
	delta2 := 1.5 * gamma * gamma * gamma // Σ|coef|·c^deg, scaled by γ^{λ+1}
	mu, err := sqm.CalibrateSkellamMu(1.0, 1e-5, delta2*1.8, delta2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	params := sqm.SessionParams{
		Gamma: gamma, Mu: mu, NumClients: 3, OutDim: 1, Rounds: 2, Seed: 11,
	}

	// Telemetry: structured events on stderr plus a metrics registry
	// shared by the session coordinator, the BGW engines and the TCP
	// meshes. The accountant ledger reports the running ε(δ) after each
	// of the two per-round Skellam releases.
	var rec sqm.Recorder = sqm.NewLogRecorder(os.Stderr, "text", sqm.LevelInfo)

	// One trace context spans the whole run: the session coordinator
	// and the three BGW mesh parties share the trace id, so sqmtrace
	// can merge their dumps into a single causal timeline. Wrapping the
	// recorder up front also routes the ledger's dp.release events into
	// the coordinator's flight recorder.
	var tc *sqm.TraceContext
	if *traceDir != "" {
		tc = sqm.NewTraceContext(sqm.DeriveTraceID(params.Seed, 3), 3)
		rec = tc.Coordinator().Wrap(rec)
	}

	const delta = 1e-5
	acct := sqm.NewAccountant(0)
	acct.Observe(rec, delta)
	acct.SetBudget(2.5) // two rounds at eps=1 each compose below this
	hooks := make([]sqm.SessionClientHooks, 3)
	for i := range hooks {
		id := i
		hooks[i] = sqm.SessionClientHooks{
			OnParams: func(p sqm.SessionParams) ([]byte, error) {
				fmt.Printf("client %d: committed quantization (γ=%g) and noise share Sk(μ/3)\n", id, p.Gamma)
				return []byte(fmt.Sprintf("noise-of-client-%d", id)), nil
			},
			OnEvalRequest: func(round uint32) error {
				fmt.Printf("client %d: contributed shares for round %d\n", id, round)
				return nil
			},
		}
	}

	var scale float64
	outcomes, err := sqm.RunVFLSessionTCP(params, hooks, func(round uint32) ([]int64, error) {
		_, tr, err := sqm.EvaluatePolynomialSum(f, x, sqm.Params{
			Gamma: params.Gamma, Mu: params.Mu, NumClients: 3,
			Engine: sqm.EngineActorBGWNet, Parties: 3,
			Seed:     params.Seed + uint64(round),
			Recorder: rec,
			Trace:    tc,
		})
		if err != nil {
			return nil, err
		}
		// One Skellam release per round enters the privacy ledger.
		acct.AddSkellam(delta2*1.8, delta2, params.Mu)
		scale = tr.Scale
		return tr.Scaled, nil
	}, sqm.WithSessionRecorder(rec), sqm.WithSessionTrace(tc), sqm.WithSessionTraceDir(*traceDir))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntrue aggregate: %.4f\n", truth)
	for _, o := range outcomes {
		if o.Err != nil {
			log.Fatalf("client %d failed: %v", o.Client, o.Err)
		}
		fmt.Printf("client %d received", o.Client)
		for _, r := range o.Results {
			fmt.Printf("  round %d: %.4f", r.Round, float64(r.Scaled[0])/scale)
		}
		fmt.Println()
	}
	fmt.Println("\nevery client saw the identical DP-protected aggregate; the session layer")
	fmt.Println("enforces that noise commitment precedes every evaluation round.")

	eps, alpha := acct.Epsilon(delta)
	fmt.Printf("\nprivacy ledger: eps(delta=%g) = %.4f @ alpha=%d over %d release(s)\n",
		delta, eps, alpha, acct.Releases())
	fmt.Fprintln(os.Stderr, "\nfinal metrics:")
	rec.Metrics().WriteTo(os.Stderr)
}
