// General multi-dimensional polynomial evaluation over MPC: Algorithm 3
// end to end, with the real BGW engine and both privacy views (server-
// and client-observed RDP, Lemma 4) reported.
//
// The function of interest here is a 2-dimensional polynomial over a
// 3-column database, mixing degrees — exactly the case where SQM's
// coefficient pre-processing matters (a uniform γ^{λ+1} factor per
// monomial regardless of degree):
//
//	f₁(x) = 0.5·x₁² + 1.5·x₂·x₃ − 0.3·x₃ + 0.1
//	f₂(x) = x₁·x₂
//
// Run with: go run ./examples/polyeval
package main

import (
	"fmt"
	"log"

	"sqm"
)

func main() {
	f := sqm.MustMulti(
		sqm.MustPolynomial(3,
			sqm.Monomial{Coef: 0.5, Exps: []int{2, 0, 0}},
			sqm.Monomial{Coef: 1.5, Exps: []int{0, 1, 1}},
			sqm.Monomial{Coef: -0.3, Exps: []int{0, 0, 1}},
			sqm.Monomial{Coef: 0.1, Exps: []int{0, 0, 0}},
		),
		sqm.MustPolynomial(3,
			sqm.Monomial{Coef: 1, Exps: []int{1, 0, 0}},
		),
	)

	// A 60-record database split across 3 clients (one column each).
	x := sqm.NewMatrix(60, 3)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		row[0] = 0.3 + 0.004*float64(i)
		row[1] = 0.5 - 0.003*float64(i)
		row[2] = 0.2 + 0.002*float64(i%7)
	}
	truth := make([]float64, 2)
	for i := 0; i < x.Rows; i++ {
		v := f.Eval(x.Row(i))
		truth[0] += v[0]
		truth[1] += v[1]
	}

	const (
		gamma = 1 << 12
		eps   = 2.0
		delta = 1e-5
	)
	// A conservative sensitivity bound for this f on the unit ball:
	// per-dimension monomial bounds scaled by γ^{λ+1}.
	scale := float64(gamma) * float64(gamma) * float64(gamma)
	delta2 := 2.4 * scale // Σ|coef|·c^deg = 2.4 with c = 1
	delta1 := delta2 * 1.4142
	mu, err := sqm.CalibrateSkellamMu(eps, delta, delta1, delta2, 1, 1)
	if err != nil {
		log.Fatal(err)
	}

	est, trace, err := sqm.EvaluatePolynomialSum(f, x, sqm.Params{
		Gamma:   gamma,
		Mu:      mu,
		Engine:  sqm.EngineBGW,
		Parties: 4,
		Seed:    13,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("true aggregate : (%.4f, %.4f)\n", truth[0], truth[1])
	fmt.Printf("SQM estimate   : (%.4f, %.4f)   at ε=%.1f, δ=%g\n", est[0], est[1], eps, delta)
	fmt.Printf("protocol cost  : %d rounds, %d messages, %d field ops, simulated time %v\n",
		trace.Stats.Rounds, trace.Stats.Messages, trace.Stats.FieldOps, trace.TotalTime().Round(1e6))

	// Both privacy views of §III-A. The server faces the full Sk(μ);
	// a curious client knows one local share and the record count.
	sEps, sAlpha := sqm.SkellamEpsilon(delta1, delta2, mu, 1, 1, delta)
	cEps, cAlpha := sqm.SkellamClientEpsilon(delta1, delta2, mu, 3, 1, delta)
	fmt.Printf("server-observed: ε=%.3f (α=%d)\n", sEps, sAlpha)
	fmt.Printf("client-observed: ε=%.3f (α=%d) — weaker, as Lemma 4 predicts\n", cEps, cAlpha)
}
