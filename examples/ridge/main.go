// Ridge regression under distributed DP — an application beyond the
// paper's PCA and logistic regression that fits SQM's polynomial class
// *exactly*: the sufficient statistics A = XᵀX and b = Xᵀy are degree-2
// aggregates of the record (x, y), so the clients run the covariance
// protocol on the augmented matrix [X | y] and the server solves the
// ridge system on the noisy statistics.
//
// Run with: go run ./examples/ridge
package main

import (
	"fmt"
	"log"

	"sqm"
)

func main() {
	ds := sqm.RegressionLike(5000, 1500, 16, 0.1, 1)
	fmt.Printf("dataset: %s, m=%d train / %d test, d=%d features + 1 target column\n",
		ds.Name, ds.Rows(), ds.TestX.Rows, ds.Cols())

	base := sqm.RidgeConfig{Delta: 1e-5, C: 1, B: 1, Gamma: 2048, Seed: 9}

	exact, err := sqm.RidgeExact(ds.X, ds.Labels, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnon-private test R²: %.3f\n\n", sqm.RidgeR2(exact, ds.TestX, ds.TestLabels))
	fmt.Printf("%6s  %9s  %9s  %9s\n", "eps", "central", "local", "SQM")

	for _, eps := range []float64{0.5, 1, 2, 4} {
		cfg := base
		cfg.Eps = eps
		central, err := sqm.RidgeCentral(ds.X, ds.Labels, cfg)
		if err != nil {
			log.Fatal(err)
		}
		local, err := sqm.RidgeLocal(ds.X, ds.Labels, cfg)
		if err != nil {
			log.Fatal(err)
		}
		private, err := sqm.RidgeSQM(ds.X, ds.Labels, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.1f  %9.3f  %9.3f  %9.3f\n", eps,
			sqm.RidgeR2(central, ds.TestX, ds.TestLabels),
			sqm.RidgeR2(local, ds.TestX, ds.TestLabels),
			sqm.RidgeR2(private, ds.TestX, ds.TestLabels))
	}
	fmt.Println("\nbecause the task is exactly polynomial, SQM needs no Taylor approximation here:")
	fmt.Println("its gap to the centralized sufficient-statistics baseline is pure quantization")
	fmt.Println("overhead and vanishes as gamma grows.")
}
