package sqm_test

import (
	"os"
	"sync"
	"testing"
	"time"

	"sqm"
	"sqm/internal/bgw"
	"sqm/internal/transport"
)

// benchOptions keeps the per-iteration cost small enough for testing.B
// while exercising every experiment end to end. Paper-scale runs go
// through cmd/sqmbench -full.
func benchOptions() sqm.ExperimentOptions {
	return sqm.ExperimentOptions{Runs: 1, RealBGWBudget: 5e6, Seed: 7}
}

var printOnce sync.Map

// runExperiment executes one paper experiment per iteration and prints
// its rows once, so `go test -bench` regenerates the same tables the
// paper reports.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := sqm.RunExperiment(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.StopTimer()
			for _, t := range tables {
				if _, err := t.WriteTo(os.Stdout); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkFigure2 regenerates the PCA utility panels (Figure 2).
func BenchmarkFigure2(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFigure3 regenerates the LR accuracy curves (Figure 3).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates the γ-sweep of sensitivity and noise
// overheads (Figure 4).
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure5 regenerates the DPSGD-vs-Approx-Poly comparison
// (Figure 5).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable1 prints the asymptotic complexity summary (Table I).
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2 regenerates the n-sweep timing table (Table II).
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3 prints the threat-model comparison (Table III).
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4 regenerates the m-sweep timing table (Table IV).
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5 regenerates the P-sweep timing table (Table V).
func BenchmarkTable5(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkAblations regenerates the design-decision studies
// (coefficient scaling, fused gates, rounding, noise families, Taylor
// order, MPC engines, sparse Gram).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// benchDot measures one fused inner-product gate (share two length-n
// vectors, Dot, reshare, open) on an Evaluator backend.
func benchDot(b *testing.B, mk func() (bgw.Evaluator, error)) {
	const n = 256
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		xs[i] = int64(i%17) - 8
		ys[i] = int64(i%11) - 5
	}
	eng, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := eng.InputVec(0, xs)
		c := eng.InputVec(1, ys)
		if got := eng.Open(eng.Dot(a, c)); got == 0 {
			b.Fatal("dot opened 0")
		}
	}
	if err := eng.Err(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDotTransport compares the monolithic single-goroutine BGW
// engine against the party-actor engine whose share traffic crosses the
// in-memory channel mesh — the overhead of real message passing versus
// array indexing for the same arithmetic.
func BenchmarkDotTransport(b *testing.B) {
	cfg := bgw.Config{Parties: 4, Seed: 5, Latency: time.Nanosecond}
	b.Run("monolithic", func(b *testing.B) {
		benchDot(b, func() (bgw.Evaluator, error) {
			eng, err := bgw.NewEngine(cfg)
			if err != nil {
				return nil, err
			}
			return bgw.Eval(eng), nil
		})
	})
	b.Run("actor-chan", func(b *testing.B) {
		benchDot(b, func() (bgw.Evaluator, error) {
			return bgw.NewActorEngine(cfg, transport.NewChanMesh(cfg.Parties))
		})
	})
}
