// Command sqmrun applies the SQM mechanisms to user-supplied CSV data:
//
//	sqmrun pca    -data x.csv -k 5 -eps 1                  # DP principal components
//	sqmrun lr     -data x.csv -label income -eps 1         # DP logistic regression
//	sqmrun ridge  -data x.csv -label price -eps 1          # DP ridge regression
//	sqmrun covariance -data x.csv -eps 1                   # DP covariance matrix
//
// Rows are clipped to L2 norm 1 (and labels validated per task) before
// the mechanism runs — the DP guarantee is stated for the clipped data.
// Results go to stdout as CSV (use -out to write a file).
//
// -engine selects the evaluation backend (plain, bgw, actor,
// actor-net); -v, -log-format and -debug-addr turn on structured
// telemetry, a /metrics + pprof endpoint and a privacy-budget ledger.
// See README.md for the full flag reference. The logic lives in
// internal/cli.
package main

import (
	"fmt"
	"os"
	"strings"

	"sqm/internal/cli"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "-h", "--help", "help":
		usage()
		return
	}
	if err := cli.Run(cmd, args, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sqmrun:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: sqmrun <%s> -data file.csv [flags]\n", strings.Join(cli.Commands(), "|"))
	fmt.Fprintln(os.Stderr, "run 'sqmrun <command> -h' for per-command flags")
}
