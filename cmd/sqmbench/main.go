// Command sqmbench regenerates the tables and figures of the paper's
// evaluation section. Every experiment id maps to one runner in
// internal/bench; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	sqmbench -exp fig3                       # one experiment, CI-scale
//	sqmbench -exp all -full -runs 20         # paper-scale shapes, 20 repeats
//	sqmbench -exp table2 -report run.json    # machine-readable run report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sqm/internal/bench"
)

// runReport is the machine-readable record of one sqmbench invocation:
// the options it ran with, every produced table (whose timing columns
// carry both the modeled time — measured compute + rounds × latency —
// and the raw measured wall-clock), and the wall-clock of the whole
// run.
type runReport struct {
	GeneratedAt      string         `json:"generated_at"`
	Experiment       string         `json:"experiment"`
	Runs             int            `json:"runs"`
	Full             bool           `json:"full"`
	RealBGWBudget    int64          `json:"real_bgw_budget"`
	Seed             uint64         `json:"seed"`
	WallClockSeconds float64        `json:"wall_clock_seconds"`
	Tables           []*bench.Table `json:"tables"`
}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: fig2, fig3, fig4, fig5, table1..table5, plans, chaos, kernels, all")
		runs    = flag.Int("runs", 3, "repeats per cell (paper: 20)")
		full    = flag.Bool("full", false, "paper-scale dataset shapes (slow)")
		budget  = flag.Int64("bgw-budget", 2e8, "max field ops executed by the real BGW engine per timing cell; larger cells are extrapolated and marked '*'")
		seed    = flag.Uint64("seed", 42, "reproducibility seed")
		format  = flag.String("format", "text", "output format: text, csv or json")
		report  = flag.String("report", "", "also write a JSON run report to this file")
		chaos   = flag.Bool("chaos", false, "run the fault-injection experiment (shorthand for -exp chaos)")
		timeout = flag.Duration("timeout", 0, "per-receive deadline in the chaos experiment (0: 50ms)")
		retries = flag.Int("retries", 0, "per-peer receive attempt budget in the chaos experiment (0: 3)")

		baseline       = flag.String("baseline", "", "kernels baseline JSON (BENCH_10.json): written when missing, compared otherwise; a throughput regression beyond 25% exits with code 3 (implies -exp kernels)")
		updateBaseline = flag.Bool("update-baseline", false, "rewrite the -baseline file with this run's numbers instead of comparing")
	)
	flag.Parse()

	if *chaos {
		*exp = "chaos"
	}
	if *baseline != "" {
		*exp = "kernels"
	}
	start := time.Now()
	o := bench.Options{Runs: *runs, Full: *full, RealBGWBudget: *budget, Seed: *seed,
		RecvTimeout: *timeout, Retries: *retries}
	var (
		tables        []*bench.Table
		kernelMetrics map[string]float64
		err           error
	)
	if strings.EqualFold(*exp, "kernels") {
		var t *bench.Table
		t, kernelMetrics = bench.Kernels(o)
		tables = []*bench.Table{t}
	} else {
		tables, err = bench.ByID(*exp, o)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rep := runReport{
		GeneratedAt:      start.UTC().Format(time.RFC3339),
		Experiment:       *exp,
		Runs:             *runs,
		Full:             *full,
		RealBGWBudget:    *budget,
		Seed:             *seed,
		WallClockSeconds: time.Since(start).Seconds(),
		Tables:           tables,
	}
	switch *format {
	case "csv":
		for _, t := range tables {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			if err := t.WriteCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case "text":
		for _, t := range tables {
			if _, err := t.WriteTo(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}
	if *report != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*report, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sqmbench: wrote run report to %s\n", *report)
	}
	if *baseline != "" {
		gateBaseline(*baseline, *updateBaseline, kernelMetrics)
	}
}

// gateBaseline implements the -baseline contract: write the file when
// it is missing (or -update-baseline), otherwise compare and exit with
// code 3 on any >25% throughput regression.
func gateBaseline(path string, update bool, metrics map[string]float64) {
	base, err := bench.LoadKernelBaseline(path)
	if update || os.IsNotExist(err) {
		if err := bench.WriteKernelBaseline(path, metrics); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "sqmbench: wrote kernels baseline to %s\n", path)
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	regressions, notes := bench.CompareKernelBaseline(base, metrics, 0.25)
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "sqmbench: baseline: %s\n", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "sqmbench: REGRESSION %s\n", r)
		}
		os.Exit(3)
	}
	fmt.Fprintf(os.Stderr, "sqmbench: kernels throughput within 25%% of %s\n", path)
}
