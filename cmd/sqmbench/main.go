// Command sqmbench regenerates the tables and figures of the paper's
// evaluation section. Every experiment id maps to one runner in
// internal/bench; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	sqmbench -exp fig3                # one experiment, CI-scale
//	sqmbench -exp all -full -runs 20  # paper-scale shapes, 20 repeats
package main

import (
	"flag"
	"fmt"
	"os"

	"sqm/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id: fig2, fig3, fig4, fig5, table1..table5, all")
		runs   = flag.Int("runs", 3, "repeats per cell (paper: 20)")
		full   = flag.Bool("full", false, "paper-scale dataset shapes (slow)")
		budget = flag.Int64("bgw-budget", 2e8, "max field ops executed by the real BGW engine per timing cell; larger cells are extrapolated and marked '*'")
		seed   = flag.Uint64("seed", 42, "reproducibility seed")
		format = flag.String("format", "text", "output format: text or csv")
	)
	flag.Parse()

	o := bench.Options{Runs: *runs, Full: *full, RealBGWBudget: *budget, Seed: *seed}
	tables, err := bench.ByID(*exp, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, t := range tables {
		switch *format {
		case "csv":
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			err = t.WriteCSV(os.Stdout)
		case "text":
			_, err = t.WriteTo(os.Stdout)
		default:
			err = fmt.Errorf("unknown format %q", *format)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
