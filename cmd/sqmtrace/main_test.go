package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeDump(t *testing.T, dir, name string, lines ...string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMergesDirAndExitsZero(t *testing.T) {
	dir := t.TempDir()
	writeDump(t, dir, "trace-00000000deadbeef-party0.jsonl",
		`{"seq":1,"level":-4,"name":"transport.send","attrs":{"trace":"00000000deadbeef","party":0,"lclock":3,"peer":1,"bytes":64}}`)
	writeDump(t, dir, "trace-00000000deadbeef-party1.jsonl",
		`{"seq":1,"level":-4,"name":"transport.recv","attrs":{"trace":"00000000deadbeef","party":1,"lclock":4,"peer":0,"remote_lclock":3,"bytes":64}}`)

	var stdout, stderr bytes.Buffer
	outFile := filepath.Join(t.TempDir(), "timeline.json")
	if code := run([]string{"-format", "json", "-o", outFile, dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	var tl struct {
		Trace string `json:"trace"`
		Match struct {
			Matched int `json:"matched"`
		} `json:"match"`
	}
	if err := json.Unmarshal(raw, &tl); err != nil {
		t.Fatalf("timeline not JSON: %v\n%s", err, raw)
	}
	if tl.Trace != "00000000deadbeef" || tl.Match.Matched != 1 {
		t.Fatalf("timeline = %+v", tl)
	}
}

func TestRunFlagsInconsistentTimeline(t *testing.T) {
	dir := t.TempDir()
	// A receive with no matching send anywhere: exit code 1.
	writeDump(t, dir, "trace-00000000deadbeef-party1.jsonl",
		`{"seq":1,"level":-4,"name":"transport.recv","attrs":{"trace":"00000000deadbeef","party":1,"lclock":4,"peer":0,"remote_lclock":3}}`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-format", "xml", "x.jsonl"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad-format exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing-file exit %d, want 2", code)
	}
}
