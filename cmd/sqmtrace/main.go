// Command sqmtrace merges the per-party flight-recorder dumps a traced
// session leaves behind (sqmrun -trace-dir, protocol.WithTraceDir) into
// one causally ordered timeline: events sorted by Lamport stamp,
// cross-party send/recv pairs matched by (link, lclock), per-link
// latency and straggler stats, and the privacy ledger's budget events
// flagged inline.
//
// Usage:
//
//	sqmtrace [-format text|json] [-o file] <trace-dir | dump.jsonl...>
//
// The exit code is 0 on a consistent timeline, 1 when the merge finds
// inconsistencies (unmatched receives or regressing round counters),
// and 2 on usage or read errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sqm/internal/sqmtrace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sqmtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text or json")
	out := fs.String("o", "", "write the timeline to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sqmtrace [-format text|json] [-o file] <trace-dir | dump.jsonl...>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "sqmtrace: unknown format %q (want text or json)\n", *format)
		return 2
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fs.Usage()
		return 2
	}

	var events []sqmtrace.Event
	var files []string
	if len(paths) == 1 {
		if st, err := os.Stat(paths[0]); err == nil && st.IsDir() {
			evs, fls, err := sqmtrace.ReadDir(paths[0])
			if err != nil {
				fmt.Fprintf(stderr, "sqmtrace: %v\n", err)
				return 2
			}
			events, files = evs, fls
		}
	}
	if files == nil {
		evs, err := sqmtrace.ReadFiles(paths)
		if err != nil {
			fmt.Fprintf(stderr, "sqmtrace: %v\n", err)
			return 2
		}
		events, files = evs, paths
	}

	tl := sqmtrace.Build(events, files)

	w := io.Writer(stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "sqmtrace: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	var werr error
	if *format == "json" {
		werr = tl.WriteJSON(w)
	} else {
		werr = tl.WriteText(w)
	}
	if werr != nil {
		fmt.Fprintf(stderr, "sqmtrace: %v\n", werr)
		return 2
	}
	if !tl.CausalOrderOK || len(tl.Match.UnmatchedRecvs) > 0 {
		fmt.Fprintf(stderr, "sqmtrace: timeline inconsistent (%d unmatched recvs, causal order ok=%v)\n",
			len(tl.Match.UnmatchedRecvs), tl.CausalOrderOK)
		return 1
	}
	return 0
}
