package main

import (
	"bytes"
	"strings"
	"testing"

	"sqm/internal/lint"
)

func TestListPrintsEveryCheck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) || !strings.Contains(out.String(), a.Doc) {
			t.Errorf("-list output missing %q:\n%s", a.Name, out.String())
		}
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(lint.All()) {
		t.Errorf("-list printed %d lines, want %d", len(lines), len(lint.All()))
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "xml"}, &out, &errb); code != 2 {
		t.Fatalf("bad format exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr missing format error: %s", errb.String())
	}
}

func TestUnknownFlagIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag exit code = %d, want 2", code)
	}
}

func TestMissingPackageIsLoadError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("missing package exit code = %d, want 2, stderr: %s", code, errb.String())
	}
}
