package main

import (
	"bytes"
	"strings"
	"testing"

	"sqm/internal/lint"
)

func TestListPrintsEveryCheck(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, stderr: %s", code, errb.String())
	}
	for _, a := range lint.All() {
		if !strings.Contains(out.String(), a.Name) || !strings.Contains(out.String(), a.Doc) {
			t.Errorf("-list output missing %q:\n%s", a.Name, out.String())
		}
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(lint.All()) {
		t.Errorf("-list printed %d lines, want %d", len(lines), len(lint.All()))
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "xml"}, &out, &errb); code != 2 {
		t.Fatalf("bad format exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown format") {
		t.Errorf("stderr missing format error: %s", errb.String())
	}
}

func TestUnknownFlagIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown flag exit code = %d, want 2", code)
	}
}

func TestMissingPackageIsLoadError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("missing package exit code = %d, want 2, stderr: %s", code, errb.String())
	}
}

func TestExplainPrintsTheInvariantCard(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-explain", "sharetaint"}, &out, &errb); code != 0 {
		t.Fatalf("-explain exit code = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, frag := range []string{
		"sharetaint —",
		"Invariant:",
		"Sources:",
		"Sinks:",
		"Sanitizers:",
		"Example finding:",
		"//lint:ignore sharetaint",
	} {
		if !strings.Contains(got, frag) {
			t.Errorf("-explain sharetaint output missing %q:\n%s", frag, got)
		}
	}
}

func TestExplainCoversEveryDataflowCheck(t *testing.T) {
	for _, name := range []string{"sharetaint", "dpbudget", "ctbranch"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-explain", name}, &out, &errb); code != 0 {
			t.Fatalf("-explain %s exit code = %d, stderr: %s", name, code, errb.String())
		}
		if !strings.Contains(out.String(), "Invariant:") || !strings.Contains(out.String(), "Example finding:") {
			t.Errorf("-explain %s missing invariant or example:\n%s", name, out.String())
		}
	}
}

func TestExplainUnknownCheckIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-explain", "nosuchcheck"}, &out, &errb); code != 2 {
		t.Fatalf("-explain nosuchcheck exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown check") {
		t.Errorf("stderr missing unknown-check error: %s", errb.String())
	}
}
