// Command sqmlint runs the SQM static-analysis suite: a set of
// stdlib-only analyzers (internal/lint) that machine-check the repo's
// privacy, determinism, and field-arithmetic invariants on every PR.
//
// Usage:
//
//	sqmlint [-format text|json] [-show-ignored] [packages...]
//	sqmlint -list
//	sqmlint -explain <check>
//
// Package patterns are directory-relative ("./...", "./internal/...",
// "./internal/field"); the default is "./...". The exit code is 0 when
// no findings survive //lint:ignore suppression, 1 when findings
// remain, and 2 on usage or load errors. -explain prints the invariant
// a check enforces and, for the dataflow checks, its source, sink, and
// sanitizer registries plus an example witness path.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"sqm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sqmlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "text", "output format: text or json")
	list := fs.Bool("list", false, "list registered checks and exit")
	explain := fs.String("explain", "", "print the invariant, registries, and example witness of the named check and exit")
	showIgnored := fs.Bool("show-ignored", false, "also print findings suppressed by //lint:ignore directives")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sqmlint [-format text|json] [-show-ignored] [packages...]\n       sqmlint -list\n       sqmlint -explain <check>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *explain != "" {
		a := lint.Lookup(*explain)
		if a == nil {
			fmt.Fprintf(stderr, "sqmlint: unknown check %q; run sqmlint -list for the registry\n", *explain)
			return 2
		}
		printExplanation(stdout, a)
		return 0
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(stderr, "sqmlint: unknown format %q (want text or json)\n", *format)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "sqmlint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "sqmlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sqmlint: %v\n", err)
		return 2
	}

	res := lint.Run(pkgs, analyzers)
	switch *format {
	case "json":
		if err := lint.WriteJSON(stdout, res, analyzers, loader.ModuleRoot()); err != nil {
			fmt.Fprintf(stderr, "sqmlint: %v\n", err)
			return 2
		}
	default:
		if err := lint.WriteText(stdout, res, loader.ModuleRoot()); err != nil {
			fmt.Fprintf(stderr, "sqmlint: %v\n", err)
			return 2
		}
		if *showIgnored {
			for _, d := range res.Suppressed {
				fmt.Fprintf(stdout, "ignored: %s\n", d)
			}
		}
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(stderr, "sqmlint: %d finding(s) in %d package(s)\n", len(res.Diagnostics), len(pkgs))
		return 1
	}
	return 0
}

// printExplanation renders an analyzer's -explain card: the one-line
// doc, the invariant prose, the dataflow registries when the check has
// them, and an example diagnostic with its witness path.
func printExplanation(w io.Writer, a *lint.Analyzer) {
	fmt.Fprintf(w, "%s — %s\n", a.Name, a.Doc)
	if a.Explain == nil {
		fmt.Fprintf(w, "\nNo extended explanation recorded for this check.\n")
		return
	}
	fmt.Fprintf(w, "\nInvariant:\n  %s\n", a.Explain.Invariant)
	section := func(title string, items []string) {
		if len(items) == 0 {
			return
		}
		fmt.Fprintf(w, "\n%s:\n", title)
		for _, it := range items {
			fmt.Fprintf(w, "  - %s\n", it)
		}
	}
	section("Sources", a.Explain.Sources)
	section("Sinks", a.Explain.Sinks)
	section("Sanitizers", a.Explain.Sanitizers)
	if a.Explain.Example != "" {
		fmt.Fprintf(w, "\nExample finding:\n  %s\n", a.Explain.Example)
	}
	fmt.Fprintf(w, "\nSuppress a reviewed finding with:\n  //lint:ignore %s <reason>\non the line above it (multi-line statements are covered whole).\n", a.Name)
}
