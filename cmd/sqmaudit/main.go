// Command sqmaudit empirically audits the library's noise mechanisms:
// it runs a mechanism many times on a pair of neighboring inputs,
// estimates the observed privacy loss from output histograms, and
// compares it with the theoretical ε of the accountant. An empirical
// value far above the theoretical one indicates an implementation leak;
// use -break-noise to see the auditor catch a deliberately broken
// mechanism.
//
// Usage:
//
//	sqmaudit -mech skellam -mu 8 -trials 30000
//	sqmaudit -mech gaussian -eps 1
//	sqmaudit -mech sqm -gamma 64 -eps 1
//	sqmaudit -mech skellam -mu 8 -break-noise
package main

import (
	"flag"
	"fmt"
	"os"

	"sqm"
	"sqm/internal/audit"
	"sqm/internal/core"
	"sqm/internal/dp"
	"sqm/internal/linalg"
	"sqm/internal/poly"
	"sqm/internal/randx"
)

func main() {
	var (
		mech      = flag.String("mech", "skellam", "mechanism: skellam, gaussian, sqm")
		mu        = flag.Float64("mu", 8, "Skellam parameter (skellam)")
		eps       = flag.Float64("eps", 1, "target epsilon (gaussian, sqm)")
		delta     = flag.Float64("delta", 1e-5, "privacy parameter delta")
		gamma     = flag.Float64("gamma", 64, "SQM scaling parameter (sqm)")
		trials    = flag.Int("trials", 30000, "samples per neighboring input")
		bins      = flag.Int("bins", 40, "histogram bins")
		breakIt   = flag.Bool("break-noise", false, "divide the noise by 10 to demonstrate detection")
		seedBase  = flag.Uint64("seed", 1, "base seed")
		theoryEps float64
	)
	flag.Parse()

	noiseScale := 1.0
	if *breakIt {
		noiseScale = 0.1
	}

	var onX, onY audit.Sampler
	switch *mech {
	case "skellam":
		theoryEps, _ = dp.SkellamEpsilon(1, 1, *mu, 1, 1, *delta, dp.DefaultMaxAlpha)
		mk := func(shift float64) audit.Sampler {
			return func(trial int) float64 {
				g := randx.New(*seedBase + uint64(trial)*2654435761)
				return shift + noiseScale*float64(g.Skellam(*mu))
			}
		}
		onX, onY = mk(0), mk(1)
	case "gaussian":
		sigma, err := dp.AnalyticGaussianSigma(*eps, *delta, 1)
		if err != nil {
			fatal(err)
		}
		theoryEps = *eps
		mk := func(shift float64) audit.Sampler {
			return func(trial int) float64 {
				g := randx.New(*seedBase + uint64(trial)*40503)
				return shift + g.Gaussian(0, noiseScale*sigma)
			}
		}
		onX, onY = mk(0), mk(1)
	case "sqm":
		// The full pipeline on neighboring micro-databases.
		d2 := *gamma**gamma + 2**gamma + 1
		muCal, err := sqm.CalibrateSkellamMu(*eps, *delta, d2, d2, 1, 1)
		if err != nil {
			fatal(err)
		}
		theoryEps = *eps
		target := poly.Monomial{Coef: 1, Exps: []int{1, 1}}
		base := linalg.FromRows([][]float64{{0.5, 0.5}, {0.3, 0.6}})
		bigger := linalg.FromRows([][]float64{{0.5, 0.5}, {0.3, 0.6}, {0.7, 0.7}})
		mk := func(x *linalg.Matrix) audit.Sampler {
			return func(trial int) float64 {
				est, _, err := core.EvaluateMonomialSum(target, x, core.Params{
					Gamma: *gamma, Mu: noiseScale * noiseScale * muCal, NumClients: 2,
					Seed: *seedBase + uint64(trial)*7919,
				})
				if err != nil {
					fatal(err)
				}
				return est
			}
		}
		onX, onY = mk(base), mk(bigger)
	default:
		fatal(fmt.Errorf("unknown mechanism %q", *mech))
	}

	r, err := audit.EstimateEpsilon(onX, onY, audit.Config{Trials: *trials, Bins: *bins, Delta: *delta})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mechanism      : %s%s\n", *mech, map[bool]string{true: " (noise deliberately broken)", false: ""}[*breakIt])
	fmt.Printf("theoretical ε  : %.4f (δ=%g)\n", theoryEps, *delta)
	fmt.Printf("empirical ε    : %.4f  (%d trials, %d bins)\n", r.EpsilonLower, r.Trials, r.Bins)
	switch {
	case r.EpsilonLower <= theoryEps*1.05+0.1:
		fmt.Println("verdict        : PASS — observed loss within the claimed budget")
	default:
		fmt.Println("verdict        : FAIL — observed loss exceeds the claim; the implementation leaks")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqmaudit:", err)
	os.Exit(1)
}
