// Command sqmgen writes the library's synthetic datasets out as CSV, so
// the sqmrun tool (and any external system) can be exercised without
// the real corpora:
//
//	sqmgen -kind kddcup -m 5000 -n 40 -out kdd.csv
//	sqmgen -kind acsincome -state TX -m 2000 -n 60 -out tx.csv
//	sqmgen -kind regression -m 3000 -n 16 -out reg.csv
//	sqmgen -kind citeseer -m 500 -n 300 -out docs.csv
//
// Labeled datasets append the label as the last column named "label".
package main

import (
	"flag"
	"fmt"
	"os"

	"sqm"
	"sqm/internal/csvio"
	"sqm/internal/linalg"
)

func main() {
	var (
		kind  = flag.String("kind", "kddcup", "dataset: kddcup, citeseer, gene, acsincome, regression")
		state = flag.String("state", "CA", "ACSIncome state: CA, TX, NY, FL")
		m     = flag.Int("m", 1000, "records")
		n     = flag.Int("n", 20, "attributes (features for labeled kinds)")
		noise = flag.Float64("noise", 0.1, "target noise (regression)")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("out", "", "output CSV file (default stdout)")
	)
	flag.Parse()

	var ds *sqm.Dataset
	var err error
	switch *kind {
	case "kddcup":
		ds = sqm.KDDCupLike(*m, *n, *seed)
	case "citeseer":
		ds = sqm.CiteSeerLike(*m, *n, *seed)
	case "gene":
		ds = sqm.GeneLike(*m, *n, *seed)
	case "acsincome":
		ds, err = sqm.ACSIncomeLike(*state, *m, 1, *n, *seed)
	case "regression":
		ds = sqm.RegressionLike(*m, 1, *n, *noise, *seed)
	default:
		err = fmt.Errorf("unknown dataset kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	x := ds.X
	header := make([]string, 0, x.Cols+1)
	for j := 0; j < x.Cols; j++ {
		header = append(header, fmt.Sprintf("f%d", j))
	}
	if ds.Labels != nil {
		full := linalg.NewMatrix(x.Rows, x.Cols+1)
		for i := 0; i < x.Rows; i++ {
			copy(full.Row(i), x.Row(i))
			full.Set(i, x.Cols, ds.Labels[i])
		}
		x = full
		header = append(header, "label")
	}
	if err := csvio.Write(w, x, header); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sqmgen: wrote %s (%d x %d%s)\n",
		ds.Name, x.Rows, x.Cols, map[bool]string{true: ", last column = label", false: ""}[ds.Labels != nil])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sqmgen:", err)
	os.Exit(1)
}
