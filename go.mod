module sqm

go 1.22
